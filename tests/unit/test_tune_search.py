"""Unit tests for the search strategies, against synthetic evaluators.

The strategies only touch ``evaluator.evaluate_values``, so these tests
drive them with a fake evaluator built around an arbitrary objective
function -- no simulator runs involved.
"""

import pytest

from repro.ssd.presets import samsung_980pro_like
from repro.tune.evaluator import Evaluation
from repro.tune.search import (
    binary_search,
    coordinate_descent,
    grid_search,
    random_halving,
    search,
)
from repro.tune.slo import SloScore, SloTerm
from repro.tune.space import build_space


def make_score(latency_violation: float, bandwidth_violation: float = 0.0) -> SloScore:
    terms = (
        SloTerm("p99", "/t/prio", 100.0, 100.0 * (1 + latency_violation), latency_violation),
        SloTerm("bandwidth", "/t/prio", 40.0, 40.0 * (1 - bandwidth_violation), bandwidth_violation),
    )
    return SloScore(terms=terms)


class FakeEvaluator:
    """Duck-typed evaluator: scores assignments with a pure function."""

    def __init__(self, space, objective):
        self.space = space
        self.objective = objective
        self.calls = 0
        self.batches = []

    def evaluate_values(self, values_list, fidelity=1.0):
        self.batches.append(len(values_list))
        out = []
        for values in values_list:
            self.calls += 1
            normalized = self.space.normalize(values)
            out.append(
                Evaluation(
                    label=self.space.label(normalized),
                    values=normalized,
                    fidelity=fidelity,
                    score=self.objective(normalized),
                )
            )
        return out


def iomax_space():
    return build_space("io.max", samsung_980pro_like(), device_scale=8.0)


def threshold_objective(threshold: float):
    """Latency violated above ``threshold`` on bps_fraction, bw hurt below.

    The synthetic analogue of an io.max cap: too loose -> latency SLO
    violated (tighten), too tight -> bandwidth SLO violated (loosen).
    """

    def objective(values):
        x = values["bps_fraction"]
        if x > threshold:
            return make_score(latency_violation=x - threshold)
        return make_score(0.0, bandwidth_violation=(threshold - x) * 0.5)

    return objective


class TestBinarySearch:
    def test_converges_to_the_threshold(self):
        space = iomax_space()
        evaluator = FakeEvaluator(space, threshold_objective(0.4))
        outcome = binary_search(space, evaluator, budget=16)
        assert outcome.best.values["bps_fraction"] == pytest.approx(0.4, abs=0.05)
        assert evaluator.calls <= 16

    def test_bracket_halves_toward_stricter_on_latency_violation(self):
        space = iomax_space()
        # Latency always violated: every midpoint must move strictly lower.
        evaluator = FakeEvaluator(space, lambda v: make_score(1.0))
        outcome = binary_search(space, evaluator, budget=8)
        per_dim = [
            e.values["bps_fraction"]
            for e in outcome.evaluations
            if e.values["iops_fraction"] == 1.0
        ]
        assert per_dim == sorted(per_dim, reverse=True)

    def test_deterministic(self):
        space = iomax_space()
        a = binary_search(space, FakeEvaluator(space, threshold_objective(0.3)), 10)
        b = binary_search(space, FakeEvaluator(space, threshold_objective(0.3)), 10)
        assert a.best.label == b.best.label
        assert [e.label for e in a.evaluations] == [e.label for e in b.evaluations]

    def test_unordered_space_rejected(self):
        space = build_space("mq-deadline", samsung_980pro_like())
        with pytest.raises(ValueError, match="no ordered dimensions"):
            binary_search(space, FakeEvaluator(space, lambda v: make_score(0.0)), 4)


class TestCoordinateDescent:
    def test_batches_one_grid_per_dimension(self):
        space = build_space("io.cost", samsung_980pro_like())
        evaluator = FakeEvaluator(space, lambda v: make_score(0.0))
        coordinate_descent(space, evaluator, budget=12, points_per_dim=4)
        assert evaluator.batches[0] == 4  # the whole first grid in one sweep

    def test_respects_budget(self):
        space = build_space("io.cost", samsung_980pro_like())
        evaluator = FakeEvaluator(space, lambda v: make_score(v["prio_weight"] / 1e4))
        outcome = coordinate_descent(space, evaluator, budget=7, points_per_dim=4)
        assert evaluator.calls <= 7 + 3  # one final grid may straddle the cap
        assert outcome.best is not None

    def test_finds_the_best_grid_point(self):
        space = iomax_space()
        evaluator = FakeEvaluator(space, threshold_objective(0.68))
        outcome = coordinate_descent(space, evaluator, budget=16, points_per_dim=5)
        # 5-point grid on [0.05, 1.0] lands nearest the threshold at 0.525.
        assert outcome.best.values["bps_fraction"] == pytest.approx(0.525, abs=0.3)
        assert outcome.best.score.total <= outcome.evaluations[0].score.total


class TestRandomHalving:
    def test_deterministic_given_seed(self):
        space = iomax_space()
        a = random_halving(space, FakeEvaluator(space, threshold_objective(0.5)), 12, seed=3)
        b = random_halving(space, FakeEvaluator(space, threshold_objective(0.5)), 12, seed=3)
        assert [e.label for e in a.evaluations] == [e.label for e in b.evaluations]
        assert a.best.label == b.best.label

    def test_different_seeds_sample_differently(self):
        space = iomax_space()
        a = random_halving(space, FakeEvaluator(space, threshold_objective(0.5)), 12, seed=3)
        b = random_halving(space, FakeEvaluator(space, threshold_objective(0.5)), 12, seed=4)
        assert [e.label for e in a.evaluations] != [e.label for e in b.evaluations]

    def test_rungs_escalate_fidelity_and_cull(self):
        space = iomax_space()
        evaluator = FakeEvaluator(space, threshold_objective(0.5))
        outcome = random_halving(space, evaluator, budget=14, seed=1)
        fidelities = sorted({e.fidelity for e in outcome.evaluations})
        assert fidelities == [0.25, 0.5, 1.0]
        assert evaluator.batches == sorted(evaluator.batches, reverse=True)
        assert outcome.best.fidelity == 1.0


class TestGridSearch:
    def test_enumerates_discrete_space(self):
        space = build_space("mq-deadline", samsung_980pro_like())
        evaluator = FakeEvaluator(space, lambda v: make_score(v["class_pair"] * 0.1))
        outcome = grid_search(space, evaluator, budget=20)
        assert evaluator.calls == 9  # all class pairs, one batch
        assert outcome.best.values["class_pair"] == 0.0


class TestDispatch:
    def test_auto_uses_the_space_default(self):
        space = build_space("mq-deadline", samsung_980pro_like())
        evaluator = FakeEvaluator(space, lambda v: make_score(0.0))
        outcome = search(space, evaluator, budget=9, strategy="auto")
        assert outcome.strategy == "grid"

    def test_unknown_strategy_rejected(self):
        space = iomax_space()
        with pytest.raises(ValueError, match="unknown strategy"):
            search(space, FakeEvaluator(space, lambda v: make_score(0.0)), 4, strategy="sgd")

    def test_budget_validated(self):
        space = iomax_space()
        with pytest.raises(ValueError, match="budget"):
            search(space, FakeEvaluator(space, lambda v: make_score(0.0)), 0)
