"""Property tests (hypothesis) for the slot-wheel engine core.

The wheel's contract against the legacy heap core: exact (time, seq)
total order — FIFO among equal timestamps — cancel-before-fire removes
an event, cancel-after-fire is a no-op, ``pending_events()`` is exact
under any interleaving of schedule/cancel/run, and a random event
stream fires in the identical order on both cores. Delays are drawn to
hit the wheel's boundaries on purpose: slot-width multiples, the wheel
horizon (``wheel_slots * wheel_width_us``), zero delays, and far-future
overflow-heap spills.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EngineConfig, Simulator

BATCHED = EngineConfig(batching=True)
LEGACY = EngineConfig(batching=False)
#: A deliberately tiny wheel so short streams still exercise slot wrap
#: and overflow-heap migration.
TINY_WHEEL = EngineConfig(batching=True, wheel_slots=8, wheel_width_us=2.0)

CONFIGS = [BATCHED, TINY_WHEEL]

#: Delays biased toward wheel boundaries: slot edges, the horizon of
#: both geometries (1024 us default, 16 us tiny), and the overflow range.
delay_strategy = st.one_of(
    st.just(0.0),
    st.sampled_from([2.0, 4.0, 8.0, 15.999, 16.0, 16.001, 1023.0, 1024.0, 1025.0]),
    st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
    st.floats(min_value=900.0, max_value=1200.0, allow_nan=False),
    st.floats(min_value=1e4, max_value=1e6, allow_nan=False),
)

#: One op per element: a delay to schedule at, or a cancel of the i-th
#: previously scheduled event (index drawn mod the live count).
ops_strategy = st.lists(
    st.one_of(
        delay_strategy.map(lambda d: ("schedule", d)),
        st.integers(min_value=0, max_value=63).map(lambda i: ("cancel", i)),
        st.sampled_from([("run_some", None)]),
    ),
    min_size=1,
    max_size=60,
)


def _drive(sim: Simulator, ops) -> tuple[list[int], int]:
    """Apply an op stream; returns (fired ids, model pending count)."""
    fired: list[int] = []
    handles: list = []
    live: set[int] = set()
    next_id = 0
    for op, arg in ops:
        if op == "schedule":
            event_id = next_id
            next_id += 1

            def fn(event_id=event_id) -> None:
                fired.append(event_id)
                live.discard(event_id)

            handles.append(sim.schedule(arg, fn))
            live.add(event_id)
        elif op == "cancel" and handles:
            index = arg % len(handles)
            handle = handles[index]
            if sim.event_active(handle):
                sim.cancel(handle)
                live.discard(index)
        elif op == "run_some":
            sim.run_until(sim.now + 8.0)
        assert sim.pending_events() == len(live)
    sim.run()
    assert sim.pending_events() == 0 and not live
    return fired, len(live)


class TestFifoEqualTimestamps:
    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40)
    )
    @settings(max_examples=60)
    def test_equal_timestamps_fire_in_schedule_order(self, groups):
        """Events at one timestamp fire in the order they were scheduled."""
        for config in CONFIGS:
            sim = Simulator(config)
            fired: list[int] = []
            for i, group in enumerate(groups):
                # Many events collapse onto few distinct timestamps.
                sim.schedule(float(group), lambda i=i: fired.append(i))
            sim.run()
            by_time = sorted(
                range(len(groups)), key=lambda i: (float(groups[i]), i)
            )
            assert fired == by_time, config

    @given(st.integers(min_value=2, max_value=50))
    @settings(max_examples=30)
    def test_same_tick_batch_preserves_nested_schedules(self, n):
        """Zero-delay events scheduled *during* a tick still run FIFO."""
        for config in CONFIGS:
            sim = Simulator(config)
            fired: list[str] = []

            def spawn(i: int) -> None:
                fired.append(f"parent{i}")
                sim.schedule(0.0, lambda i=i: fired.append(f"child{i}"))

            for i in range(n):
                sim.schedule(1.0, lambda i=i: spawn(i))
            sim.run()
            expected = [f"parent{i}" for i in range(n)] + [
                f"child{i}" for i in range(n)
            ]
            assert fired == expected, config


class TestCancelSemantics:
    @given(delay_strategy)
    @settings(max_examples=60)
    def test_cancel_before_fire_suppresses(self, delay):
        for config in CONFIGS:
            sim = Simulator(config)
            fired: list[int] = []
            handle = sim.schedule(delay, lambda: fired.append(1))
            assert sim.event_active(handle)
            assert sim.pending_events() == 1
            sim.cancel(handle)
            assert not sim.event_active(handle)
            assert sim.pending_events() == 0
            sim.run()
            assert fired == []

    @given(delay_strategy)
    @settings(max_examples=60)
    def test_cancel_after_fire_is_noop(self, delay):
        for config in CONFIGS:
            sim = Simulator(config)
            fired: list[int] = []
            handle = sim.schedule(delay, lambda: fired.append(1))
            sim.run()
            assert fired == [1]
            sim.cancel(handle)  # must not raise or corrupt accounting
            sim.cancel(handle)  # double-cancel after fire: still a no-op
            assert sim.pending_events() == 0
            assert sim.events_processed == 1

    @given(delay_strategy)
    @settings(max_examples=40)
    def test_double_cancel_counts_once(self, delay):
        for config in CONFIGS:
            sim = Simulator(config)
            handle = sim.schedule(delay, lambda: None)
            sim.cancel(handle)
            sim.cancel(handle)
            assert sim.pending_events() == 0
            sim.run()
            assert sim.events_processed == 0


class TestPendingEventsExactness:
    @given(ops_strategy)
    @settings(max_examples=60)
    def test_pending_exact_under_interleaving(self, ops):
        """pending_events() is exact after every schedule/cancel/run step."""
        for config in CONFIGS:
            _drive(Simulator(config), ops)  # asserts at every step

    @given(ops_strategy)
    @settings(max_examples=40)
    def test_pending_matches_entry_scan(self, ops):
        """O(1) counter == O(n) active-entry scan, mid-stream."""
        for config in CONFIGS:
            sim = Simulator(config)
            for op, arg in ops:
                if op == "schedule":
                    sim.schedule(arg, lambda: None)
                elif op == "run_some":
                    sim.run_until(sim.now + 8.0)
                active = sum(
                    1 for _, _, is_active in sim.pending_entries() if is_active
                )
                assert sim.pending_events() == active


class TestHeapWheelEquivalence:
    @given(ops_strategy)
    @settings(max_examples=60)
    def test_random_streams_fire_identically(self, ops):
        """The wheel is a drop-in for the heap: same fired ids, same order,
        same final clock and processed-event count."""
        results = []
        for config in (BATCHED, TINY_WHEEL, LEGACY):
            sim = Simulator(config)
            fired, _ = _drive(sim, ops)
            results.append((fired, sim.now, sim.events_processed))
        assert results[0] == results[2], "batched vs legacy diverge"
        assert results[1] == results[2], "tiny wheel vs legacy diverge"

    @given(
        st.lists(
            st.tuples(delay_strategy, delay_strategy),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_reschedule_chains_fire_identically(self, chain_spec):
        """Two-hop chains (event schedules a follow-up) match across cores."""

        def run(config) -> tuple[list[int], float]:
            sim = Simulator(config)
            fired: list[int] = []
            for i, (first, second) in enumerate(chain_spec):

                def hop(i=i, second=second) -> None:
                    fired.append(i)
                    sim.schedule(second, lambda i=i: fired.append(i + 1000))

                sim.schedule(first, hop)
            sim.run()
            return fired, sim.now

        assert run(BATCHED) == run(LEGACY)
        assert run(TINY_WHEEL) == run(LEGACY)
