"""Link integrity for the markdown documentation.

Every relative link in ``docs/`` (plus the top-level pages that point
into it) must resolve to a file that exists in the repository, and
every fragment (``#anchor``) must match a heading in the target file
using GitHub's slug rules. External ``http(s)`` links are out of scope
— checking them would make tier-1 depend on the network.

This is satellite coverage for the docs site: a renamed file or heading
breaks this test instead of silently 404ing for readers.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    [
        *(REPO_ROOT / "docs").rglob("*.md"),
        REPO_ROOT / "README.md",
        REPO_ROOT / "EXPERIMENTS.md",
    ]
)

# [text](target) — markdown inline links; images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def _github_slug(heading: str) -> str:
    """Slugify a heading the way GitHub's anchor generator does."""
    text = heading.strip()
    # Inline code / formatting marks contribute their text, not markers.
    text = re.sub(r"[`*_]", "", text)
    # Drop trailing markdown link targets inside headings, keep the text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _headings(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(_github_slug(match.group(2)))
    return slugs


def _links(path: Path) -> list[str]:
    found: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        found.extend(_LINK_RE.findall(line))
    return found


def test_doc_files_present() -> None:
    """The docs tree this suite guards actually exists."""
    names = {path.relative_to(REPO_ROOT).as_posix() for path in DOC_FILES}
    for required in (
        "docs/README.md",
        "docs/architecture.md",
        "docs/faults.md",
        "docs/tuning.md",
        "docs/profiling.md",
        "docs/fleet.md",
        "docs/control.md",
        "docs/surrogate.md",
        "docs/api/obs.md",
        "docs/api/exec.md",
        "docs/api/faults.md",
        "docs/api/tune.md",
        "docs/api/prof.md",
        "docs/api/fleet.md",
        "docs/api/ctl.md",
        "docs/api/surrogate.md",
        "README.md",
        "EXPERIMENTS.md",
    ):
        assert required in names, f"missing documentation page: {required}"


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=lambda p: p.relative_to(REPO_ROOT).as_posix()
)
def test_relative_links_resolve(doc: Path) -> None:
    broken: list[str] = []
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw_path, _, fragment = target.partition("#")
        if raw_path:
            resolved = (doc.parent / raw_path).resolve()
            if not resolved.exists():
                broken.append(f"{target} -> {raw_path} does not exist")
                continue
        else:
            resolved = doc
        if fragment and resolved.suffix == ".md":
            if fragment not in _headings(resolved):
                broken.append(f"{target} -> no heading slug '{fragment}'")
    assert not broken, (
        f"{doc.relative_to(REPO_ROOT)} has broken links:\n  "
        + "\n  ".join(broken)
    )
