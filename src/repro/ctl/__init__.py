"""repro.ctl: online feedback control of cgroup I/O knobs.

Static tuning (D6) picks one configuration; production traffic shifts.
This subsystem closes the paper's §VII loop: a sim-clock control plane
(:mod:`repro.ctl.plane`) subscribes to the :class:`~repro.obs.sampler.
StackSampler` stream, scores each observation window against a tenant
SLO with the same :class:`~repro.tune.slo.SloScore` machinery the tuner
uses, and lets pluggable controllers (:mod:`repro.ctl.controllers`)
rewrite knob sysfs files mid-run: a PID loop on io.max limits, vrate
nudging for io.cost, and target adaptation driving io.latency's QD
throttling. Every decision -- applied or suppressed -- lands in a
decision-trace JSONL for auditability. ``repro.core.d8_online`` and the
``isol-bench ctl`` subcommand evaluate static vs online under
time-varying arrival patterns.
"""

from repro.ctl.base import Actuation, ControlObservation, Controller
from repro.ctl.config import (
    CtlConfig,
    IoMaxCtlParams,
    PidParams,
    QdLimitCtlParams,
    VrateCtlParams,
)
from repro.ctl.controllers import (
    PidIoMaxController,
    QdLimitController,
    VrateController,
)
from repro.ctl.pid import PidState, RateLimiter
from repro.ctl.plane import ControlPlane, write_ctl_trace

__all__ = [
    "Actuation",
    "ControlObservation",
    "Controller",
    "CtlConfig",
    "IoMaxCtlParams",
    "PidParams",
    "QdLimitCtlParams",
    "VrateCtlParams",
    "PidIoMaxController",
    "QdLimitController",
    "VrateController",
    "PidState",
    "RateLimiter",
    "ControlPlane",
    "write_ctl_trace",
]
