"""Golden regression for D7 fleet placement, plus its determinism bars.

Mirrors ``test_tune_golden.py``: one cold ``--mini`` placement
comparison of all three strategies runs in tier-1 (seconds) against the
golden in ``tests/data/place_mini_golden.json``. The same module-scoped
run anchors the ISSUE's acceptance bars: the serifos consolidator
strictly beats random placement on the pinned fleet, a 2-worker run
reproduces the whole comparison bit-identically, and a rerun against
the warm cache executes zero new scenarios.

Assignments, evictions, winner and ranking compare exactly; scores with
a tolerance (the simulator is deterministic, so the tolerance only
absorbs deliberate small re-calibrations — anything larger should be
acknowledged by regenerating the golden).

Regenerate after an intentional simulator change::

    PYTHONPATH=src python -m tests.integration.test_fleet_golden
"""

import json
import pathlib

import pytest

from repro.core.d7_placement import compare_placements, mini_settings
from repro.exec import ResultCache, SweepExecutor
from repro.fleet.interference import build_matrix
from repro.fleet.spec import demo_fleet

DATA_DIR = pathlib.Path(__file__).parent.parent / "data"
MINI_GOLDEN = DATA_DIR / "place_mini_golden.json"

#: Relative tolerance for scores; structure/winner compare exactly.
REL_TOL = 0.5
#: Absolute slack so near-zero (fully-repaired) scores compare stably.
ABS_TOL = 0.02


def assert_matches_golden(comparison, golden_path: pathlib.Path) -> None:
    golden = json.loads(golden_path.read_text())
    doc = comparison.to_json_dict()
    assert doc["fleet_name"] == golden["fleet_name"]
    assert doc["seed"] == golden["seed"]
    assert doc["best"] == golden["best"]
    assert sorted(doc["reports"]) == sorted(golden["reports"])
    for strategy, expected in golden["reports"].items():
        measured = doc["reports"][strategy]
        placement = measured["placement"]
        assert placement["assignment"] == expected["placement"]["assignment"], (
            strategy
        )
        assert placement["evicted"] == expected["placement"]["evicted"], strategy
        assert doc["scores"][strategy] == pytest.approx(
            golden["scores"][strategy], rel=REL_TOL, abs=ABS_TOL
        ), strategy
        for mine, theirs in zip(
            measured["devices"], expected["devices"], strict=True
        ):
            assert mine["slot"] == theirs["slot"], strategy
            assert mine["tenants"] == theirs["tenants"], strategy
            assert mine["tuned"] == theirs["tuned"], strategy


@pytest.fixture(scope="module")
def mini_run(tmp_path_factory):
    """One cold mini placement comparison against a fresh cache."""
    cache_dir = tmp_path_factory.mktemp("fleet-cache")
    with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as executor:
        comparison = compare_placements(
            settings=mini_settings(), executor=executor
        )
        stats = executor.stats
    # The evaluation stage reuses the matrix's solo/pair scenarios, so a
    # cold run still hits its own cache — but most work executes.
    assert stats.executed > 0
    return comparison, cache_dir, stats


class TestMiniPlacement:
    def test_matches_golden(self, mini_run):
        comparison, _, _ = mini_run
        assert_matches_golden(comparison, MINI_GOLDEN)

    def test_serifos_strictly_beats_random(self, mini_run):
        """The acceptance bar: interference-awareness pays on this fleet."""
        comparison, _, _ = mini_run
        assert comparison.score_of("serifos") < comparison.score_of("random")
        assert comparison.best() == "serifos"
        assert comparison.reports["serifos"].meets_slo

    def test_no_strategy_sheds_tenants_on_the_demo_fleet(self, mini_run):
        comparison, _, _ = mini_run
        for strategy, report in comparison.reports.items():
            assert report.placement.evicted == (), strategy

    def test_warm_cache_executes_zero_scenarios(self, mini_run):
        comparison, cache_dir, cold_stats = mini_run
        with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as warm:
            rerun = compare_placements(settings=mini_settings(), executor=warm)
            assert warm.stats.executed == 0
            assert warm.stats.failed == 0
            assert warm.stats.cached + warm.stats.deduped >= cold_stats.executed
        assert rerun.to_json_dict() == comparison.to_json_dict()
        assert rerun.render() == comparison.render()

    def test_two_worker_run_bit_identical_to_serial(self, mini_run):
        """The ISSUE's determinism bar: --workers 2 vs serial, uncached."""
        comparison, _, _ = mini_run
        with SweepExecutor(max_workers=2) as pool:
            parallel = compare_placements(settings=mini_settings(), executor=pool)
            assert pool.stats.executed > 0  # genuinely recomputed
        assert parallel.to_json_dict() == comparison.to_json_dict()
        assert parallel.render() == comparison.render()


class TestMatrixCache:
    def test_matrix_warm_rebuild_is_identical_and_free(self, tmp_path):
        """Cold vs warm matrix builds: same numbers, zero re-execution."""
        fleet = demo_fleet()
        settings = mini_settings().matrix
        cache = ResultCache(tmp_path / "matrix-cache")
        with SweepExecutor(max_workers=1, cache=cache) as cold:
            first = build_matrix(fleet, settings, executor=cold)
            assert cold.stats.executed > 0
            assert cold.stats.cached == 0
        with SweepExecutor(max_workers=1, cache=cache) as warm:
            second = build_matrix(fleet, settings, executor=warm)
            assert warm.stats.executed == 0
        assert second.to_json_dict() == first.to_json_dict()
        # The matrix in the pinned golden is this very build.
        golden = json.loads(MINI_GOLDEN.read_text())
        assert sorted(first.to_json_dict()["solo"]) == sorted(
            golden["matrix"]["solo"]
        )


def _regenerate() -> None:
    with SweepExecutor(max_workers=None) as executor:
        comparison = compare_placements(settings=mini_settings(), executor=executor)
    MINI_GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    MINI_GOLDEN.write_text(
        json.dumps(comparison.to_json_dict(), indent=2, sort_keys=True) + "\n"
    )
    print(comparison.render())
    print(f"wrote {MINI_GOLDEN}")


if __name__ == "__main__":
    _regenerate()
