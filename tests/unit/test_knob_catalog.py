"""Unit tests for the experiment knob catalog."""

import pytest

from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    NoneKnob,
)
from repro.core.knob_catalog import (
    ALL_KNOB_NAMES,
    fairness_knobs,
    iomax_limit_for_share,
    overhead_knobs,
)
from repro.core.scenarios import FairnessGroupSpec, linear_weight_fairness_groups
from repro.ssd.presets import samsung_980pro_like


@pytest.fixture
def ssd():
    return samsung_980pro_like()


class TestOverheadKnobs:
    def test_all_knobs_present(self, ssd):
        knobs = overhead_knobs(ssd, ["/t/a"])
        assert set(knobs) == set(ALL_KNOB_NAMES)

    def test_bfq_slice_idle_disabled(self, ssd):
        knobs = overhead_knobs(ssd, ["/t/a"])
        assert knobs["bfq"].slice_idle_us == 0.0

    def test_iomax_limits_beyond_saturation(self, ssd):
        knobs = overhead_knobs(ssd, ["/t/a"])
        limit = knobs["io.max"].limits["/t/a"]["rbps"]
        assert limit > 5 * 2.94 * 1024**3

    def test_iolatency_targets_are_seconds(self, ssd):
        knobs = overhead_knobs(ssd, ["/t/a"])
        assert knobs["io.latency"].targets_us["/t/a"] >= 1_000_000

    def test_iocost_model_is_optimistic(self, ssd):
        knobs = overhead_knobs(ssd, ["/t/a"])
        model = knobs["io.cost"].resolve_model(ssd)
        from repro.iorequest import KIB, OpType, Pattern

        device_iops = ssd.saturation_iops(OpType.READ, Pattern.RANDOM, 4 * KIB)
        assert model.rrandiops > device_iops


class TestFairnessKnobs:
    def test_weighted_catalog_types(self, ssd):
        groups = linear_weight_fairness_groups(4)
        knobs = fairness_knobs(groups, ssd, weighted=True)
        assert isinstance(knobs["none"], NoneKnob)
        assert isinstance(knobs["mq-deadline"], MqDeadlineKnob)
        assert isinstance(knobs["bfq"], BfqKnob)
        assert isinstance(knobs["io.max"], IoMaxKnob)
        assert isinstance(knobs["io.latency"], IoLatencyKnob)
        assert isinstance(knobs["io.cost"], IoCostKnob)

    def test_bfq_weights_clamped_to_range(self, ssd):
        groups = [FairnessGroupSpec("/t/big", weight=5000)]
        knobs = fairness_knobs(groups, ssd, weighted=True)
        assert knobs["bfq"].weights["/t/big"] == 1000

    def test_iomax_limits_proportional_to_weight(self, ssd):
        groups = linear_weight_fairness_groups(2)  # weights 100, 200
        knobs = fairness_knobs(groups, ssd, weighted=True)
        limits = knobs["io.max"].limits
        ratio = limits["/tenants/g1"]["rbps"] / limits["/tenants/g0"]["rbps"]
        assert ratio == pytest.approx(2.0)

    def test_latency_targets_invert_weights(self, ssd):
        groups = linear_weight_fairness_groups(2)
        knobs = fairness_knobs(groups, ssd, weighted=True)
        targets = knobs["io.latency"].targets_us
        assert targets["/tenants/g0"] > targets["/tenants/g1"]

    def test_classes_quantized_to_three_levels(self, ssd):
        groups = linear_weight_fairness_groups(9)
        knobs = fairness_knobs(groups, ssd, weighted=True)
        classes = set(knobs["mq-deadline"].classes.values())
        assert classes == {"idle", "best-effort", "realtime"}

    def test_unweighted_has_no_classes(self, ssd):
        groups = linear_weight_fairness_groups(4)
        knobs = fairness_knobs(groups, ssd, weighted=False)
        assert knobs["mq-deadline"].classes == {}

    def test_iocost_uses_fig5a_recipe(self, ssd):
        groups = linear_weight_fairness_groups(2)
        knobs = fairness_knobs(groups, ssd, weighted=True)
        qos = knobs["io.cost"].qos
        assert qos.rlat_us == 100.0
        assert qos.vrate_min_pct == 50.0


class TestIomaxShare:
    def test_valid_share(self, ssd):
        full = iomax_limit_for_share(1.0, ssd)
        half = iomax_limit_for_share(0.5, ssd)
        assert half == pytest.approx(full / 2)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_invalid_share(self, ssd, bad):
        with pytest.raises(ValueError):
            iomax_limit_for_share(bad, ssd)
