"""End-to-end Table I evaluation: run every sub-benchmark, score, render.

This is the "one button" of isol-bench: reduced versions of the D1-D4
experiments feed :mod:`repro.core.desiderata` and out comes the paper's
Table I. Durations/scales are parameterized so tests can run a quick
version and the bench a thorough one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.d1_overhead import run_bandwidth_scaling, run_lc_overhead, peak_bandwidth
from repro.core.d2_fairness import (
    run_mixed_workload_fairness,
    run_uniform_fairness,
    run_weighted_fairness,
)
from repro.core.d3_tradeoffs import sweep_knob, unprotected_baseline
from repro.core.d4_bursts import burst_knobs, measure_burst_response
from repro.core.desiderata import (
    DesiderataInputs,
    TableOne,
    score_all,
)
from repro.core.pareto import distinct_clusters, front_span
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like

CONTROL_KNOBS = ("mq-deadline", "bfq", "io.max", "io.latency", "io.cost")

# Knobs whose configuration must be recomputed by hand as tenants come
# and go (the paper's §VII criticism of io.max).
STATIC_KNOBS = {"io.max"}
# Knobs with no own prioritization mechanism for bursts: BFQ cannot
# effectively prioritize (O6); io.max only throttles others.
NO_PRIORITIZATION = {"bfq"}


@dataclass
class TableOneSettings:
    """Effort level for the evaluation."""

    ssd: SsdModel = None  # type: ignore[assignment]
    duration_s: float = 0.4
    warmup_s: float = 0.12
    fairness_duration_s: float = 0.6
    # io.latency needs to traverse its QD staircase (10 windows x 500 ms)
    # before the low-utilization trade-off points exist.
    iolatency_duration_s: float = 8.0
    burst_duration_s: float = 8.0
    device_scale: float = 8.0
    burst_device_scale: float = 16.0
    sweep_points: int = 5
    seed: int = 42

    def __post_init__(self) -> None:
        if self.ssd is None:
            self.ssd = samsung_980pro_like()


def quick_settings() -> TableOneSettings:
    """The ``table1 --quick`` effort level (shared by CLI and goldens)."""
    return TableOneSettings(
        duration_s=0.25,
        warmup_s=0.08,
        fairness_duration_s=0.4,
        iolatency_duration_s=7.0,
        burst_duration_s=6.0,
        device_scale=12.0,
        burst_device_scale=20.0,
        sweep_points=4,
    )


def evaluate_table_one(
    settings: TableOneSettings | None = None,
    executor: SweepExecutor | None = None,
) -> TableOne:
    """Run the reduced D1-D4 suite and score Table I."""
    settings = settings or TableOneSettings()
    ssd = settings.ssd
    executor = resolve_executor(executor)

    # ---- D1 -----------------------------------------------------------
    lc = run_lc_overhead(
        app_counts=(1, 16),
        ssd=ssd,
        duration_s=settings.duration_s,
        warmup_s=settings.warmup_s,
        seed=settings.seed,
        collect_cdf_for=(),
        executor=executor,
    )
    bw = run_bandwidth_scaling(
        app_counts=(17,),
        device_counts=(1,),
        ssd=ssd,
        duration_s=settings.duration_s,
        warmup_s=settings.warmup_s,
        seed=settings.seed,
        device_scale=settings.device_scale,
        executor=executor,
    )
    none_p99_1 = lc.p99("none", 1)
    none_p99_16 = lc.p99("none", 16)
    none_peak = peak_bandwidth(bw, "none", 1)

    # ---- D2 -----------------------------------------------------------
    def fairness_map(points):
        return {p.knob: p.fairness for p in points}

    uniform16 = fairness_map(
        run_uniform_fairness(
            group_counts=(16,),
            ssd=ssd,
            duration_s=settings.fairness_duration_s,
            warmup_s=settings.warmup_s,
            seed=settings.seed,
            device_scale=settings.device_scale,
            executor=executor,
        )
    )
    weighted2 = fairness_map(
        run_weighted_fairness(
            group_counts=(2,),
            ssd=ssd,
            duration_s=settings.iolatency_duration_s,
            warmup_s=settings.iolatency_duration_s * 0.5,
            seed=settings.seed,
            device_scale=settings.device_scale,
            executor=executor,
        )
    )
    weighted16 = fairness_map(
        run_weighted_fairness(
            group_counts=(16,),
            ssd=ssd,
            duration_s=settings.fairness_duration_s,
            warmup_s=settings.warmup_s,
            seed=settings.seed,
            device_scale=settings.device_scale,
            executor=executor,
        )
    )
    mixed_sizes = fairness_map(
        run_mixed_workload_fairness(
            "sizes",
            ssd=ssd,
            duration_s=settings.fairness_duration_s,
            warmup_s=settings.warmup_s,
            seed=settings.seed,
            device_scale=settings.device_scale,
            executor=executor,
        )
    )

    # ---- D3 -----------------------------------------------------------
    base = unprotected_baseline(
        "batch",
        ssd=ssd,
        duration_s=settings.duration_s,
        warmup_s=settings.warmup_s,
        seed=settings.seed,
        device_scale=settings.device_scale,
        executor=executor,
    )
    front_stats: dict[str, tuple[int, float, bool]] = {}
    for knob_name in CONTROL_KNOBS:
        duration = (
            settings.iolatency_duration_s
            if knob_name == "io.latency"
            else settings.duration_s
        )
        easy = sweep_knob(
            knob_name,
            "batch",
            be_variant="rand-4k",
            ssd=ssd,
            duration_s=duration,
            warmup_s=duration * 0.3,
            seed=settings.seed,
            device_scale=settings.device_scale,
            sweep_points=settings.sweep_points,
            executor=executor,
        )
        # Clusters are counted over ALL swept configurations (the paper
        # plots every point, Fig. 7): they measure how many distinct
        # operating points the knob can express. The span still comes
        # from all points' utilization axis.
        clusters = distinct_clusters(
            easy,
            x_resolution=max(base.aggregate_gib_s * 0.05, 1e-6),
            y_resolution=max(
                abs(max(p.priority_metric for p in easy)) * 0.08, 1e-6
            ),
        )
        x_span, _ = front_span(easy)
        hard_ok = True
        for variant in ("rand-256k", "rand-4k-write"):
            hard = sweep_knob(
                knob_name,
                "batch",
                be_variant=variant,
                ssd=ssd,
                duration_s=duration,
                warmup_s=duration * 0.3,
                seed=settings.seed,
                device_scale=settings.device_scale,
                # Trade-off curves often saturate early on the hard
                # variants (e.g. write costs cap the device well below
                # vrate=100%); 4 points keep the cluster count meaningful.
                sweep_points=max(4, settings.sweep_points - 1),
                executor=executor,
            )
            hard_clusters = distinct_clusters(
                hard,
                x_resolution=max(base.aggregate_gib_s * 0.05, 1e-6),
                y_resolution=max(
                    abs(max(p.priority_metric for p in hard)) * 0.08, 1e-6
                ),
            )
            if hard_clusters < 3:
                hard_ok = False
        front_stats[knob_name] = (
            clusters,
            x_span / max(base.aggregate_gib_s, 1e-9),
            hard_ok,
        )

    # ---- D4 -----------------------------------------------------------
    scaled = ssd.scaled(settings.burst_device_scale)
    bursts = burst_knobs(scaled, "batch", lc_target_us=1600.0)
    burst_ms: dict[str, float | None] = {}
    for knob_name in CONTROL_KNOBS:
        response = measure_burst_response(
            bursts[knob_name],
            "batch",
            burst_start_s=2.0,
            duration_s=settings.burst_duration_s,
            ssd=ssd,
            seed=settings.seed,
            device_scale=settings.burst_device_scale,
            executor=executor,
        )
        burst_ms[knob_name] = response.response_ms

    # ---- Score --------------------------------------------------------
    table = TableOne()
    for knob_name in CONTROL_KNOBS:
        clusters, span_fraction, hard_ok = front_stats[knob_name]
        inputs = DesiderataInputs(
            knob=knob_name,
            peak_bandwidth_ratio_vs_none=peak_bandwidth(bw, knob_name, 1) / none_peak,
            p99_overhead_1app=lc.p99(knob_name, 1) / none_p99_1 - 1.0,
            p99_overhead_saturated=lc.p99(knob_name, 16) / none_p99_16 - 1.0,
            fairness_uniform_16=uniform16[knob_name],
            fairness_weighted_2=weighted2[knob_name],
            fairness_weighted_16=weighted16[knob_name],
            fairness_mixed_sizes=mixed_sizes[knob_name],
            static_configuration=knob_name in STATIC_KNOBS,
            front_clusters_rand4k=clusters,
            front_utilization_span_fraction=span_fraction,
            hard_variants_effective=hard_ok,
            has_prioritization=knob_name not in NO_PRIORITIZATION,
            burst_response_ms=burst_ms[knob_name],
        )
        table.rows.append(score_all(inputs))
        table.inputs[knob_name] = inputs
    return table
