"""Ablation: io.cost.model accuracy vs achievable bandwidth.

The paper observes (Fig. 5a, O3) that io.cost's configuration -- in
particular how conservative the installed model is -- directly moves the
bandwidth saturation point: "io.cost is restricting apps to uphold the
model". This ablation sweeps the model conservatism from pessimistic
(0.5x the device) through the paper's generated model (0.78x) to
optimistic (1.3x) and reports aggregate bandwidth and fairness.
"""

from conftest import run_once

from repro.cgroups.knobs import IoCostQosParams
from repro.core.config import IoCostKnob, NoneKnob, Scenario
from repro.core.report import render_table
from repro.core.runner import run_scenario
from repro.core.scenarios import fairness_specs, uniform_fairness_groups
from repro.ssd.presets import samsung_980pro_like
from repro.tools.iocost_coef_gen import derive_model

DEVICE_SCALE = 8.0
CONSERVATISM = (0.5, 0.78, 1.0, 1.3)


def _run(knob):
    groups = uniform_fairness_groups(4)
    scenario = Scenario(
        name="ablation-iocost-model",
        knob=knob,
        apps=fairness_specs(groups, apps_per_group=4, queue_depth=64),
        ssd_model=samsung_980pro_like(),
        cores=10,
        duration_s=0.5,
        warmup_s=0.15,
        device_scale=DEVICE_SCALE,
    )
    result = run_scenario(scenario)
    return result.equivalent_bandwidth_gib_s, result.fairness()


def test_iocost_model_accuracy(benchmark, figure_output):
    ssd = samsung_980pro_like().scaled(DEVICE_SCALE)

    def experiment():
        rows = []
        none_bw, none_fair = _run(NoneKnob())
        rows.append(["none", "-", none_bw, none_fair])
        for conservatism in CONSERVATISM:
            knob = IoCostKnob(
                model=derive_model(ssd, conservatism=conservatism),
                qos=IoCostQosParams(enable=True, ctrl="user"),
            )
            bw, fairness = _run(knob)
            rows.append(["io.cost", f"{conservatism:.2f}x", bw, fairness])
        return rows

    rows = run_once(benchmark, experiment)
    table = render_table(
        ["knob", "model conservatism", "GiB/s (equiv)", "Jain"],
        rows,
        title="Ablation -- io.cost model accuracy vs achievable bandwidth",
    )
    figure_output("ablation_iocost_model", table)

    by_model = {row[1]: row[2] for row in rows if row[0] == "io.cost"}
    none_bw = rows[0][2]
    # Pessimistic model halves bandwidth; optimistic model stops binding.
    assert by_model["0.50x"] < 0.65 * none_bw
    assert by_model["0.50x"] < by_model["0.78x"] < by_model["1.30x"] * 1.05
    assert by_model["1.30x"] > 0.9 * none_bw
    # Fairness holds regardless of the model.
    assert all(row[3] > 0.97 for row in rows)
