"""Ablation: static vs managed io.max in a dynamic environment (O8, §VII).

The paper's Table I gives io.max "--" cells because a practitioner must
"dynamically translate weights to maximums and adjust values as new
groups start or stop" (citing PAIO [60] / Tango [70]). This ablation
runs that practitioner: two weighted tenants on a timeline where the
heavy one stops halfway, comparing static io.max limits against the
:class:`~repro.iocontrol.dynamic_iomax.DynamicIoMaxManager` control loop
on three axes -- the survivor's reclaimed bandwidth, the weighted
fairness while both run, and the strict work-conservation violation
fraction (§II-B's D3 metric).
"""

import dataclasses

from conftest import run_once

from repro.core.config import DynamicIoMaxKnob, IoMaxKnob, NoneKnob, Scenario
from repro.core.knob_catalog import iomax_limit_for_share
from repro.core.report import render_table
from repro.core.runner import run_scenario
from repro.ssd.presets import samsung_980pro_like
from repro.workloads.apps import batch_app
from repro.workloads.spec import ActivityWindow

DEVICE_SCALE = 8.0
WEIGHTS = {"/t/heavy": 300, "/t/light": 100}
HEAVY_STOPS_AT_US = 0.5e6
DURATION_S = 1.2


def _apps():
    heavy = dataclasses.replace(
        batch_app("heavy", "/t/heavy", queue_depth=64),
        windows=(ActivityWindow(0.0, HEAVY_STOPS_AT_US),),
    )
    return [heavy, batch_app("light", "/t/light", queue_depth=64)]


def _knobs():
    ssd = samsung_980pro_like().scaled(DEVICE_SCALE)
    total = sum(WEIGHTS.values())
    return {
        "none": NoneKnob(),
        "io.max static": IoMaxKnob(
            limits={
                path: {"rbps": iomax_limit_for_share(weight / total, ssd)}
                for path, weight in WEIGHTS.items()
            }
        ),
        "io.max managed": DynamicIoMaxKnob(
            weights=WEIGHTS, adjust_period_us=100_000.0
        ),
    }


def test_dynamic_iomax(benchmark, figure_output):
    def experiment():
        rows = []
        for name, knob in _knobs().items():
            result = run_scenario(
                Scenario(
                    name=f"ablation-dyn-iomax-{name}",
                    knob=knob,
                    apps=_apps(),
                    duration_s=DURATION_S,
                    warmup_s=0.1,
                    device_scale=DEVICE_SCALE,
                )
            )
            both_running = result.collector.cgroup_stats(0.15e6, HEAVY_STOPS_AT_US)
            bandwidths = [
                both_running[path].bytes / ((HEAVY_STOPS_AT_US - 0.15e6) / 1e6)
                for path in sorted(both_running)
            ]
            from repro.metrics.fairness import weighted_jain_index

            fairness = weighted_jain_index(
                bandwidths, [WEIGHTS[path] for path in sorted(both_running)]
            )
            light_after = result.collector.app_stats(
                "light", 0.7e6, DURATION_S * 1e6
            )
            rows.append(
                [
                    name,
                    fairness,
                    light_after.bandwidth_mib_s * DEVICE_SCALE,
                    result.work_conservation_violation,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = render_table(
        [
            "knob",
            "weighted Jain (both running)",
            "survivor MiB/s after heavy stops",
            "wc-violation",
        ],
        rows,
        title="Ablation -- static vs managed io.max on a start/stop timeline",
    )
    figure_output("ablation_dynamic_iomax", table)

    by_name = {row[0]: row for row in rows}
    # Static: fair while both run, strands bandwidth after.
    assert by_name["io.max static"][1] > 0.95
    assert by_name["io.max static"][2] < 0.5 * by_name["none"][2]
    # Managed: fair AND reclaims most of the device.
    assert by_name["io.max managed"][1] > 0.95
    assert by_name["io.max managed"][2] > 0.85 * by_name["none"][2]
    assert (
        by_name["io.max managed"][3] < by_name["io.max static"][3]
    )
