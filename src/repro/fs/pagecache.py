"""Write-back page cache over the block layer.

Models the parts of the Linux page cache that interact with cgroup I/O
control:

* **Buffered writes** complete after a memory-copy latency; the data
  becomes *dirty* and is flushed later by background writeback in
  device-friendly chunks.
* **Dirty thresholds**: writeback starts above the background threshold;
  above the hard threshold writers are blocked until writeback catches up
  (``balance_dirty_pages``).
* **Writeback attribution**: in cgroup v2, writeback I/O is charged to
  the cgroup that dirtied the pages, so throttlers see the real culprit;
  with ``attributed=False`` it is issued from a shared flusher context
  (cgroup v1 behaviour), bypassing per-tenant control -- the comparison
  the extension experiment draws.
* **Buffered reads** hit the cache with a configurable probability;
  misses go to the device (read-ahead is out of scope).

The cache is deliberately per-device and bytes-based (no per-file radix
trees): what matters to the isolation question is *how much* I/O reaches
the block layer from *whose* budget, and when.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.iorequest import IoRequest, OpType, Pattern

SubmitFn = Callable[[IoRequest], None]


@dataclass(frozen=True)
class PageCacheConfig:
    """Tunables mirroring vm.dirty_* and writeback behaviour."""

    # Memory-copy latency for a cache-hit/buffered completion.
    copy_latency_us: float = 2.0
    # Background writeback starts above this many dirty bytes (global).
    dirty_background_bytes: int = 16 * 1024 * 1024
    # Writers block above this (balance_dirty_pages).
    dirty_hard_bytes: int = 64 * 1024 * 1024
    # Writeback I/O is issued in chunks of this size.
    writeback_chunk_bytes: int = 256 * 1024
    # Max concurrent writeback chunks in flight.
    writeback_depth: int = 8
    # Probability a buffered read hits the cache.
    read_hit_ratio: float = 0.0
    # cgroup v2 attribution: charge writeback to the dirtying cgroup.
    attributed: bool = True

    def __post_init__(self) -> None:
        if self.copy_latency_us < 0:
            raise ValueError("copy latency must be >= 0")
        if self.dirty_background_bytes > self.dirty_hard_bytes:
            raise ValueError("background threshold must not exceed hard threshold")
        if self.writeback_chunk_bytes <= 0 or self.writeback_depth < 1:
            raise ValueError("writeback chunk/depth must be positive")
        if not 0.0 <= self.read_hit_ratio <= 1.0:
            raise ValueError("read_hit_ratio must be in [0, 1]")


#: cgroup the unattributed flusher thread runs in (v1-style writeback).
FLUSHER_CGROUP = "/"
FLUSHER_NAME = "kworker-flush"


class PageCache:
    """One device's write-back cache.

    ``submit_direct`` is the block-layer entry (the host's normal submit
    path); buffered apps call :meth:`submit_buffered` instead. Writeback
    requests are fabricated :class:`IoRequest` objects whose completions
    come back through :meth:`on_writeback_complete` (the host routes by
    app name).
    """

    def __init__(
        self,
        sim,
        rng,
        config: PageCacheConfig,
        submit_direct: SubmitFn,
        device_index: int = 0,
    ):
        self.sim = sim
        self.rng = rng
        self.config = config
        self.submit_direct = submit_direct
        self.device_index = device_index
        # Dirty bytes per dirtying cgroup (FIFO within a group).
        self.dirty_by_cgroup: dict[str, int] = {}
        self.total_dirty = 0
        self._writeback_in_flight = 0
        # Bytes issued to the device but not yet durable: still counted
        # against the writer limit, like pages under writeback. Tracked
        # per dirtying cgroup regardless of attribution, so the
        # balance_dirty_pages limit is per-tenant (a fast-draining tenant
        # may keep writing while a slow one stalls -- this is what makes
        # buffered-writer throughput follow the drain rate its weight
        # buys it).
        self._writeback_bytes_by_cgroup: dict[str, int] = {}
        # Writers blocked by the hard limit:
        # (cgroup, bytes_needed, wake callback).
        self._blocked_writers: deque[tuple[str, int, Callable[[], None]]] = deque()
        # Writeback origin per request (needed when unattributed: the
        # request itself carries the flusher's cgroup).
        self._wb_origin: dict[int, str] = {}
        self.stats_buffered_writes = 0
        self.stats_writeback_ios = 0
        self.stats_read_hits = 0
        self.stats_read_misses = 0
        self.stats_writer_stalls = 0

    # ------------------------------------------------------------------
    # Buffered I/O entry points
    # ------------------------------------------------------------------
    def submit_buffered(self, req: IoRequest, complete: Callable[[IoRequest], None]) -> None:
        """Buffered read or write from an app."""
        if req.op == OpType.WRITE:
            self._buffered_write(req, complete)
        else:
            self._buffered_read(req, complete)

    def _outstanding_bytes(self, cgroup_path: str) -> int:
        return self.dirty_by_cgroup.get(cgroup_path, 0) + self._writeback_bytes_by_cgroup.get(
            cgroup_path, 0
        )

    def _active_dirtiers(self) -> int:
        active = {
            path
            for path, size in self.dirty_by_cgroup.items()
            if size > 0 or self._writeback_bytes_by_cgroup.get(path, 0) > 0
        }
        active.update(cgroup for cgroup, _, _ in self._blocked_writers)
        return max(1, len(active))

    def _cgroup_hard_limit(self) -> float:
        """Each active dirtier's share of the global dirty budget."""
        return self.config.dirty_hard_bytes / self._active_dirtiers()

    def _buffered_write(self, req, complete) -> None:
        if self._outstanding_bytes(req.cgroup_path) + req.size > self._cgroup_hard_limit():
            # balance_dirty_pages: the writer stalls until writeback
            # frees enough of *its own* dirty budget.
            self.stats_writer_stalls += 1
            self._blocked_writers.append(
                (req.cgroup_path, req.size, lambda: self._buffered_write(req, complete))
            )
            self._kick_writeback()
            return
        self._dirty(req.cgroup_path, req.size)
        self.stats_buffered_writes += 1
        self.sim.schedule(self.config.copy_latency_us, lambda: complete(req))
        self._kick_writeback()

    def _buffered_read(self, req, complete) -> None:
        if self.rng.random() < self.config.read_hit_ratio:
            self.stats_read_hits += 1
            self.sim.schedule(self.config.copy_latency_us, lambda: complete(req))
        else:
            self.stats_read_misses += 1
            self.submit_direct(req)

    # ------------------------------------------------------------------
    # Dirty accounting and writeback
    # ------------------------------------------------------------------
    def _dirty(self, cgroup_path: str, size: int) -> None:
        self.dirty_by_cgroup[cgroup_path] = (
            self.dirty_by_cgroup.get(cgroup_path, 0) + size
        )
        self.total_dirty += size

    def _clean(self, cgroup_path: str, size: int) -> None:
        remaining = self.dirty_by_cgroup.get(cgroup_path, 0)
        take = min(remaining, size)
        self.dirty_by_cgroup[cgroup_path] = remaining - take
        self.total_dirty -= take

    def _kick_writeback(self) -> None:
        while (
            self._writeback_in_flight < self.config.writeback_depth
            and self._writeback_needed()
        ):
            victim = self._pick_victim()
            if victim is None:
                return
            chunk = min(
                self.config.writeback_chunk_bytes, self.dirty_by_cgroup[victim]
            )
            self._clean(victim, chunk)
            owner_cgroup = victim if self.config.attributed else FLUSHER_CGROUP
            wb_req = IoRequest(
                app_name=FLUSHER_NAME,
                cgroup_path=owner_cgroup,
                op=OpType.WRITE,
                pattern=Pattern.SEQUENTIAL,
                size=chunk,
                device_index=self.device_index,
            )
            wb_req.submit_time = self.sim.now
            self._writeback_in_flight += 1
            self._writeback_bytes_by_cgroup[victim] = (
                self._writeback_bytes_by_cgroup.get(victim, 0) + chunk
            )
            self._wb_origin[id(wb_req)] = victim
            self.stats_writeback_ios += 1
            self.submit_direct(wb_req)

    def _writeback_needed(self) -> bool:
        if self._blocked_writers:
            return self.total_dirty > 0
        return self.total_dirty > self.config.dirty_background_bytes

    def _pick_victim(self) -> str | None:
        """The cgroup with the most dirty bytes flushes first."""
        candidates = {
            path: size for path, size in self.dirty_by_cgroup.items() if size > 0
        }
        if not candidates:
            return None
        return max(candidates, key=candidates.get)

    def on_writeback_complete(self, req: IoRequest) -> None:
        """A writeback chunk finished at the device."""
        self._writeback_in_flight -= 1
        origin = self._wb_origin.pop(id(req), req.cgroup_path)
        self._writeback_bytes_by_cgroup[origin] = max(
            0, self._writeback_bytes_by_cgroup.get(origin, 0) - req.size
        )
        self._wake_blocked_writers()
        self._kick_writeback()

    def _wake_blocked_writers(self) -> None:
        # Wake in FIFO order, but only writers whose own cgroup budget
        # has room; others keep waiting (per-tenant throttling).
        still_blocked: deque = deque()
        limit = self._cgroup_hard_limit()
        woken = []
        while self._blocked_writers:
            cgroup, size, wake = self._blocked_writers.popleft()
            if self._outstanding_bytes(cgroup) + size <= limit:
                woken.append(wake)
            else:
                still_blocked.append((cgroup, size, wake))
        self._blocked_writers = still_blocked
        for wake in woken:
            wake()

    # ------------------------------------------------------------------
    @property
    def blocked_writers(self) -> int:
        return len(self._blocked_writers)
