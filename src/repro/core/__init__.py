"""isol-bench: the benchmark suite itself.

Builds scenarios (devices + cgroup tree + knob configuration + app set),
runs them on the simulated host, and implements the four desiderata
sub-benchmarks:

* D1 overhead & scalability  -- :mod:`repro.core.d1_overhead`
* D2 proportional fairness   -- :mod:`repro.core.d2_fairness`
* D3 priority/utilization    -- :mod:`repro.core.d3_tradeoffs`
* D4 burst support           -- :mod:`repro.core.d4_bursts`

:mod:`repro.core.desiderata` scores all four into the paper's Table I.
"""

from repro.core.config import (
    Scenario,
    KnobConfig,
    NoneKnob,
    MqDeadlineKnob,
    BfqKnob,
    IoMaxKnob,
    IoLatencyKnob,
    IoCostKnob,
)
from repro.core.runner import ScenarioResult, run_scenario

__all__ = [
    "Scenario",
    "KnobConfig",
    "NoneKnob",
    "MqDeadlineKnob",
    "BfqKnob",
    "IoMaxKnob",
    "IoLatencyKnob",
    "IoCostKnob",
    "ScenarioResult",
    "run_scenario",
]
