"""Cache-key canonicalization: equality, sensitivity, stability.

A content-addressed cache is only correct if the key function is
*total* over scenario content: equal scenarios must collide, any field
perturbation must not, and the key must not leak process-local state
(``id()``, dict insertion order, ``PYTHONHASHSEED``). Each class below
pins one of those properties.
"""

import dataclasses
import enum
import math
import subprocess
import sys

import pytest

from repro.core.config import (
    BfqKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
)
from repro.ctl import CtlConfig, IoMaxCtlParams, PidParams
from repro.exec.cachekey import SCHEMA_VERSION, canonical_text, scenario_key
from repro.faults import get_fault_plan
from repro.ssd.presets import samsung_980pro_like
from repro.tune.slo import GroupSlo, SloSpec
from repro.workloads.apps import batch_app, lc_app
from repro.workloads.spec import ArrivalPhase, JobSpec


def _ctl(**iomax_overrides) -> CtlConfig:
    """A control-plane config anchored to the base scenario's LC group."""
    return CtlConfig(
        slo=SloSpec(groups=(GroupSlo("/tenants/b", p99_latency_us=300.0),)),
        iomax=IoMaxCtlParams(**iomax_overrides),
    )


def _phased_app(rate_iops: float = 1000.0) -> JobSpec:
    """An open-loop job with a time-varying arrival timeline."""
    return JobSpec(
        name="phased",
        cgroup_path="/tenants/a",
        arrival_phases=(ArrivalPhase(0.0, 50_000.0, rate_iops),),
    )


def base_scenario(**overrides) -> Scenario:
    fields = dict(
        name="key-test",
        knob=BfqKnob(weights={"/tenants/a": 100, "/tenants/b": 200}),
        apps=[batch_app("batch0", "/tenants/a"), lc_app("lc0", "/tenants/b")],
        ssd_model=samsung_980pro_like(),
        duration_s=0.1,
        warmup_s=0.02,
        seed=42,
        cores=4,
        num_devices=1,
        device_scale=8.0,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestCanonicalText:
    def test_dict_order_invariance(self):
        assert canonical_text({"a": 1, "b": 2}) == canonical_text({"b": 2, "a": 1})

    def test_float_rendering(self):
        assert repr(0.1) in canonical_text(0.1)
        assert canonical_text(math.inf) != canonical_text(-math.inf)
        assert canonical_text(math.nan) == canonical_text(math.nan)
        # bool is not int here: True and 1 must not collide.
        assert canonical_text(True) != canonical_text(1)

    def test_enum_by_identity_not_value(self):
        class A(enum.Enum):
            X = 1

        class B(enum.Enum):
            X = 1

        assert canonical_text(A.X) != canonical_text(B.X)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_text(lambda: None)

    def test_nested_containers(self):
        assert canonical_text([1, (2, 3)]) == canonical_text([1, (2, 3)])
        assert canonical_text([1, 2]) != canonical_text([2, 1])


class TestScenarioKey:
    def test_independent_constructions_collide(self):
        assert scenario_key(base_scenario()) == scenario_key(base_scenario())

    def test_key_is_hex_sha256(self):
        key = scenario_key(base_scenario())
        assert len(key) == 64
        int(key, 16)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": "other"},
            {"seed": 43},
            {"duration_s": 0.2},
            {"warmup_s": 0.03},
            {"cores": 5},
            {"num_devices": 2},
            {"device_scale": 4.0},
            {"preconditioned": True},
            {"knob": NoneKnob()},
            {"knob": BfqKnob(weights={"/tenants/a": 100, "/tenants/b": 201})},
            {"knob": MqDeadlineKnob(classes={"/tenants/a": "realtime"})},
            {"knob": IoMaxKnob(limits={"/tenants/a": {"rbps": 1e9}})},
            {"faults": get_fault_plan("latency-spike")},
            {"faults": get_fault_plan("transient-error")},
            {"apps": [batch_app("batch0", "/tenants/a")]},
            {"apps": [batch_app("batch0", "/tenants/a", queue_depth=8),
                      lc_app("lc0", "/tenants/b")]},
            {"ctl": _ctl()},
            {"ctl": _ctl(deadband_fraction=0.03)},
            {"apps": [_phased_app(), lc_app("lc0", "/tenants/b")]},
            {"apps": [_phased_app(rate_iops=2000.0), lc_app("lc0", "/tenants/b")]},
        ],
        ids=lambda o: next(iter(o)),
    )
    def test_any_perturbation_changes_key(self, overrides):
        assert scenario_key(base_scenario(**overrides)) != scenario_key(
            base_scenario()
        )

    def test_nested_ctl_params_perturb_key(self):
        """Two control planes differing only in a nested PID gain or a
        rate-limit fraction must not share a cache entry — the whole
        CtlConfig tree renders into the key."""
        base = scenario_key(base_scenario(ctl=_ctl()))
        gain = scenario_key(base_scenario(ctl=_ctl(pid=PidParams(kp=0.6))))
        step = scenario_key(base_scenario(ctl=_ctl(max_recover_fraction=0.2)))
        assert len({base, gain, step}) == 3

    def test_knob_dict_insertion_order_irrelevant(self):
        forward = BfqKnob(weights={"/tenants/a": 100, "/tenants/b": 200})
        backward = BfqKnob(weights={"/tenants/b": 200, "/tenants/a": 100})
        assert scenario_key(base_scenario(knob=forward)) == scenario_key(
            base_scenario(knob=backward)
        )

    def test_salt_includes_schema_version(self):
        assert f"isolbench-cache:v{SCHEMA_VERSION}" in canonical_saltless_probe()


def canonical_saltless_probe() -> str:
    # The salt is module-private by design; recover it via the module to
    # keep the test honest about what actually feeds the hash.
    from repro.exec import cachekey

    return cachekey._SALT


_CHILD_PROGRAM = """
import sys
sys.path.insert(0, "src")
from tests.unit.test_exec_cachekey import base_scenario
from repro.exec.cachekey import scenario_key
print(scenario_key(base_scenario()))
"""


class TestCrossInterpreterStability:
    @pytest.mark.parametrize("hashseed", ["0", "12345"])
    def test_key_stable_across_interpreters(self, hashseed):
        """No id()/hash()/dict-order leakage: a fresh interpreter with a
        different PYTHONHASHSEED computes the identical key."""
        import os

        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", _CHILD_PROGRAM],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            check=True,
        )
        assert out.stdout.strip() == scenario_key(base_scenario())
