"""The surrogate prefilter: score thousands, simulate only the top-k.

:class:`SurrogatePrefilter` sits between a search strategy and the real
:class:`~repro.tune.evaluator.TuneEvaluator`: the strategy hands it a
wide candidate pool, the prefilter renders each candidate's scenario,
featurizes every cgroup, predicts per-group p99 / bandwidth / util with
the :class:`~repro.surrogate.model.SurrogateModel`, scores the
*predicted* delivery against the SLO with the exact
:func:`~repro.tune.slo.score_cgroup_stats` formulas, and returns the
candidates ranked by predicted violation. Only the top-k ever reach the
``SweepExecutor``-backed evaluator.

Trust is measured, not assumed: every candidate the simulator verifies
is logged as a ``(predicted, measured)`` pair, and the filter reports
``scored= verified= mae_p99= spearman=`` in tune stats lines and the
decision-trace JSONL (:meth:`SurrogatePrefilter.stats_line` /
:meth:`~SurrogatePrefilter.to_json_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ssd.model import SsdModel
from repro.surrogate.features import (
    TARGET_P99_CAP_US,
    featurize,
    scenario_cgroups,
)
from repro.surrogate.model import SurrogateModel, mean_absolute_error, spearman
from repro.tune.evaluator import Evaluation
from repro.tune.slo import SloSpec, score_cgroup_stats

#: Default width multiplier: candidates scored per simulator run the
#: verification budget buys (the "search 100x wider" dial).
DEFAULT_POOL_FACTOR = 64


class _PredictedLatency:
    """Duck-typed ``LatencySummary`` carrying only the p99."""

    def __init__(self, p99_us: float):
        self.p99_us = p99_us


class _PredictedStats:
    """Duck-typed ``AppWindowStats`` built from surrogate predictions."""

    def __init__(self, p99_us: float, bandwidth_mib_s: float):
        self.latency = (
            _PredictedLatency(p99_us) if p99_us < TARGET_P99_CAP_US else None
        )
        self.bandwidth_mib_s = max(0.0, bandwidth_mib_s)


@dataclass(frozen=True)
class RankedCandidate:
    """One pool candidate with its predicted SLO delivery."""

    #: Normalized assignment (the evaluator's input).
    values: dict
    #: The space's deterministic label for the assignment.
    label: str
    #: Predicted SLO-violation total (the ranking key).
    predicted_total: float
    #: Predicted p99 of the SLO's primary latency group, full-speed us.
    predicted_p99_us: float
    #: Ensemble-spread uncertainty on that p99, full-speed us.
    uncertainty_p99_us: float


@dataclass(frozen=True)
class VerifiedRecord:
    """One surrogate-vs-simulator comparison on a verified candidate."""

    label: str
    predicted_total: float
    measured_total: float
    predicted_p99_us: float
    measured_p99_us: float

    def to_json_dict(self) -> dict:
        """Plain-dict form for traces and reports."""
        return {
            "label": self.label,
            "predicted_total": self.predicted_total,
            "measured_total": self.measured_total,
            "predicted_p99_us": self.predicted_p99_us,
            "measured_p99_us": self.measured_p99_us,
        }


@dataclass
class SurrogatePrefilter:
    """Scores candidate pools with a surrogate; logs verification error."""

    #: The fitted per-group performance model.
    model: SurrogateModel
    #: The SLO predicted deliveries are scored against.
    slo: SloSpec
    #: The unscaled device model (utilization reference derivation).
    ssd: SsdModel
    #: Candidates scored per simulator run the budget buys.
    pool_factor: int = DEFAULT_POOL_FACTOR
    #: Candidates the pool ranks ever scored (across rank calls).
    scored: int = 0
    #: Verified ``(predicted, measured)`` pairs, in verification order.
    verified: list[VerifiedRecord] = field(default_factory=list)

    def _primary_p99_group(self) -> str:
        """The cgroup whose p99 the error metrics track."""
        for group in self.slo.groups:
            if group.p99_latency_us is not None:
                return group.cgroup
        return self.slo.groups[0].cgroup

    def predict_scenario(self, scenario) -> tuple[float, dict]:
        """Predicted SLO total + per-cgroup means for one scenario.

        Returns ``(predicted_total, predictions)`` where predictions
        maps each cgroup to its ``{p99_us, bandwidth_mib_s, util}``
        means plus ``p99_std_us`` spread.
        """
        import numpy as np

        cgroups = scenario_cgroups(scenario)
        rows = np.asarray([featurize(scenario, cgroup) for cgroup in cgroups])
        means, stds = self.model.predict(rows)
        predictions: dict[str, dict] = {}
        shims: dict[str, _PredictedStats] = {}
        aggregate = 0.0
        for i, cgroup in enumerate(cgroups):
            by_target = dict(zip(self.model.target_names, means[i].tolist()))
            by_target["p99_std_us"] = float(stds[i][0])
            predictions[cgroup] = by_target
            p99 = min(TARGET_P99_CAP_US, max(0.0, by_target["p99_us"]))
            bandwidth = max(0.0, by_target["bandwidth_mib_s"])
            shims[cgroup] = _PredictedStats(p99, bandwidth)
            aggregate += bandwidth
        score = score_cgroup_stats(
            self.slo,
            shims,
            device_scale=1.0,
            aggregate_bandwidth_mib_s=aggregate,
            ssd=self.ssd,
        )
        return score.total, predictions

    def rank(self, evaluator, candidates: list[dict]) -> list[RankedCandidate]:
        """Rank a candidate pool by predicted SLO violation, best first.

        ``evaluator`` renders each assignment into the exact scenario
        the simulator would run (same workload, seed, fidelity), so the
        surrogate scores precisely what verification would measure.
        Deterministic: ties break on the assignment label.
        """
        primary = self._primary_p99_group()
        ranked: list[RankedCandidate] = []
        for values in candidates:
            normalized = evaluator.space.normalize(values)
            label = evaluator.space.label(normalized)
            scenario = evaluator.scenario_for(normalized, label)
            total, predictions = self.predict_scenario(scenario)
            primary_prediction = predictions.get(
                primary, {"p99_us": TARGET_P99_CAP_US, "p99_std_us": 0.0}
            )
            ranked.append(
                RankedCandidate(
                    values=normalized,
                    label=label,
                    predicted_total=total,
                    predicted_p99_us=primary_prediction["p99_us"],
                    uncertainty_p99_us=primary_prediction["p99_std_us"],
                )
            )
        self.scored += len(ranked)
        return sorted(ranked, key=lambda c: (c.predicted_total, c.label))

    def observe(self, candidate: RankedCandidate, evaluation: Evaluation) -> None:
        """Log one verified candidate's surrogate-vs-simulator error."""
        measured_p99 = TARGET_P99_CAP_US
        primary = self._primary_p99_group()
        for term in evaluation.score.terms:
            if term.kind == "p99" and term.cgroup == primary:
                measured_p99 = min(TARGET_P99_CAP_US, term.measured)
                break
        self.verified.append(
            VerifiedRecord(
                label=candidate.label,
                predicted_total=candidate.predicted_total,
                measured_total=evaluation.score.total,
                predicted_p99_us=candidate.predicted_p99_us,
                measured_p99_us=measured_p99,
            )
        )

    # -- error reporting -----------------------------------------------
    def mae_p99_us(self) -> float:
        """MAE between predicted and measured p99 on the verified set."""
        return mean_absolute_error(
            [record.predicted_p99_us for record in self.verified],
            [record.measured_p99_us for record in self.verified],
        )

    def spearman_p99(self) -> float:
        """Rank correlation of predicted vs measured p99 (verified set)."""
        return spearman(
            [record.predicted_p99_us for record in self.verified],
            [record.measured_p99_us for record in self.verified],
        )

    def stats_line(self) -> str:
        """The one-line trust report for tune progress/stats output."""
        return (
            f"surrogate: scored={self.scored} verified={len(self.verified)} "
            f"mae_p99={self.mae_p99_us():.1f}us spearman={self.spearman_p99():.2f}"
        )

    def to_json_dict(self) -> dict:
        """Machine-readable trust report (decision-trace payload)."""
        return {
            "scored": self.scored,
            "verified": len(self.verified),
            "mae_p99_us": self.mae_p99_us(),
            "spearman_p99": self.spearman_p99(),
            "model_rows": self.model.n_rows,
            "records": [record.to_json_dict() for record in self.verified],
        }


def fit_from_corpus(corpus, seed: int = 42, config=None) -> SurrogateModel:
    """Fit a :class:`SurrogateModel` from a corpus (thin convenience)."""
    from repro.surrogate.model import fit_surrogate

    X, y = corpus.matrices()
    return fit_surrogate(X, y, corpus.feature_names, seed=seed, config=config)
