"""FaultPlan construction, validation, scaling and the preset registry.

The plan is the cache-key-visible half of the fault subsystem, so these
tests pin the properties the executor relies on: frozen/hashable plans,
total validation (bad shapes raise at construction, never at run time),
and ``scaled()`` dilating exactly the time-valued fields.
"""

import dataclasses
import math

import pytest

from repro.faults import (
    FAULT_CLASSES,
    FaultPlan,
    GcStorm,
    LatencySpike,
    RetryPolicy,
    Slowdown,
    TransientErrors,
    get_fault_plan,
)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"first_at_us": -1.0},
            {"period_us": 0.0},
            {"stall_us": -5.0},
            {"unit_fraction": 0.0},
            {"unit_fraction": 1.5},
            {"jitter": 1.0},
        ],
    )
    def test_bad_spike_raises(self, kwargs):
        with pytest.raises(ValueError):
            LatencySpike(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"storm_us": 300_000.0},  # longer than the period
            {"extra_waf": 0.5},
            {"duty": 1.5},
            {"chunk_period_us": 0.0},
        ],
    )
    def test_bad_storm_raises(self, kwargs):
        with pytest.raises(ValueError):
            GcStorm(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_mult": 0.5},
            {"write_mult": 0.9},
            {"start_us": 10.0, "stop_us": 10.0},
        ],
    )
    def test_bad_slowdown_raises(self, kwargs):
        with pytest.raises(ValueError):
            Slowdown(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"probability": 0.0}, {"probability": 1.5}, {"error_latency_us": -1.0}],
    )
    def test_bad_errors_raises(self, kwargs):
        with pytest.raises(ValueError):
            TransientErrors(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_us": -1.0},
            {"backoff_mult": 0.5},
            {"jitter": 1.0},
            {"timeout_us": -1.0},
        ],
    )
    def test_bad_retry_policy_raises(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_plan_needs_label_and_tuples(self):
        with pytest.raises(ValueError):
            FaultPlan(label="")
        with pytest.raises(ValueError):
            FaultPlan(spikes=[LatencySpike()])  # list: unhashable


class TestPlanProperties:
    def test_plans_are_hashable_and_comparable(self):
        a = FaultPlan(spikes=(LatencySpike(),))
        b = FaultPlan(spikes=(LatencySpike(),))
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultPlan(spikes=(LatencySpike(stall_us=1.0),))

    def test_device_faults_flag(self):
        assert not FaultPlan().device_faults  # retry policy alone: host-only
        assert FaultPlan(spikes=(LatencySpike(),)).device_faults
        assert FaultPlan(storms=(GcStorm(),)).device_faults
        assert FaultPlan(slowdowns=(Slowdown(read_mult=2.0),)).device_faults
        assert FaultPlan(errors=(TransientErrors(),)).device_faults


class TestScaled:
    def test_scale_one_is_identity(self):
        plan = get_fault_plan("latency-spike")
        assert plan.scaled(1.0) is plan

    def test_scale_dilates_time_fields_only(self):
        plan = FaultPlan(
            spikes=(LatencySpike(first_at_us=10.0, period_us=100.0, stall_us=5.0,
                                 unit_fraction=0.5, jitter=0.2),),
            storms=(GcStorm(first_at_us=20.0, period_us=200.0, storm_us=80.0,
                            extra_waf=3.0, chunk_period_us=2.0),),
            slowdowns=(Slowdown(read_mult=2.0, start_us=5.0, stop_us=50.0),),
            errors=(TransientErrors(probability=0.02, error_latency_us=10.0,
                                    start_us=1.0, stop_us=99.0),),
            retry=RetryPolicy(backoff_base_us=100.0, timeout_us=1_000.0),
        )
        scaled = plan.scaled(8.0)
        spike = scaled.spikes[0]
        assert (spike.first_at_us, spike.period_us, spike.stall_us) == (80.0, 800.0, 40.0)
        assert (spike.unit_fraction, spike.jitter) == (0.5, 0.2)  # shape preserved
        storm = scaled.storms[0]
        assert (storm.first_at_us, storm.period_us, storm.storm_us,
                storm.chunk_period_us) == (160.0, 1600.0, 640.0, 16.0)
        assert storm.extra_waf == 3.0
        slow = scaled.slowdowns[0]
        assert (slow.start_us, slow.stop_us) == (40.0, 400.0)
        assert slow.read_mult == 2.0
        err = scaled.errors[0]
        assert (err.error_latency_us, err.start_us, err.stop_us) == (80.0, 8.0, 792.0)
        assert err.probability == 0.02
        assert scaled.retry.backoff_base_us == 800.0
        assert scaled.retry.timeout_us == 8_000.0
        assert scaled.retry.max_attempts == plan.retry.max_attempts

    def test_scale_keeps_infinite_windows_infinite(self):
        plan = FaultPlan(slowdowns=(Slowdown(read_mult=2.0),))
        assert math.isinf(plan.scaled(8.0).slowdowns[0].stop_us)

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            FaultPlan().scaled(0.5)


class TestPresets:
    def test_registry_names_match_labels(self):
        for name in FAULT_CLASSES:
            assert get_fault_plan(name).label == name

    def test_every_preset_is_valid_and_hashable(self):
        plans = {get_fault_plan(name) for name in FAULT_CLASSES}
        assert len(plans) == len(FAULT_CLASSES)

    def test_presets_are_fresh_instances(self):
        # Factories, not singletons: callers may replace() fields freely.
        a = get_fault_plan("gc-storm")
        b = get_fault_plan("gc-storm")
        assert a == b and a is not b
        dataclasses.replace(a, label="tweaked")  # must not raise

    def test_unknown_name_raises_with_options(self):
        with pytest.raises(KeyError, match="latency-spike"):
            get_fault_plan("disk-on-fire")

    def test_timeout_storm_arms_watchdog(self):
        plan = get_fault_plan("timeout-storm")
        assert plan.retry.timeout_us > 0
        # The watchdog must be able to fire before the stall ends,
        # otherwise the preset would never exercise the timeout path.
        assert plan.retry.timeout_us < plan.spikes[0].stall_us
