"""Scenario and knob configuration.

A :class:`Scenario` bundles everything one isol-bench run needs: the SSD
model and device count, the host core count, the knob under test with its
settings, the app set, and the measurement timeline. Knob configurations
know how to write themselves into the cgroup tree (as sysfs strings) and
which scheduler/throttler implementation plus CPU cost profile they
activate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # imported lazily to avoid a core <-> ctl import cycle
    from repro.ctl.config import CtlConfig

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.cgroups.knobs import IoCostModelParams, IoCostQosParams
from repro.faults.plan import FaultPlan
from repro.obs.config import TraceConfig
from repro.prof.config import ProfConfig
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like
from repro.workloads.spec import JobSpec


def device_id_for_index(index: int) -> str:
    """MAJ:MIN string for a simulated device (nvme0n1 -> 259:0, ...)."""
    return f"259:{index}"


class KnobConfig:
    """Base class for the five knob configurations (plus "none")."""

    #: key into :data:`repro.cpu.model.KNOB_PROFILES`
    profile_name = "none"
    #: which scheduler the knob requires ("none" | "mq-deadline" | "bfq")
    scheduler_name = "none"
    #: human-readable label used in reports
    label = "none"

    def configure(self, hierarchy: CgroupHierarchy, device_ids: list[str]) -> None:
        """Write knob files into the tree. Default: nothing to write."""

    def describe(self) -> str:
        return self.label


@dataclass
class NoneKnob(KnobConfig):
    """Baseline: no cgroup I/O control, none scheduler."""

    profile_name = "none"
    scheduler_name = "none"
    label = "none"


@dataclass
class MqDeadlineKnob(KnobConfig):
    """MQ-Deadline + io.prio.class.

    ``classes`` maps a cgroup path to a priority-class string
    ("realtime" / "best-effort" / "idle"). Unlisted groups keep the
    default (no class -> best-effort at dispatch).
    """

    classes: dict[str, str] = field(default_factory=dict)
    prio_aging_expire_us: float = 2_000_000.0

    profile_name = "mq-deadline"
    scheduler_name = "mq-deadline"
    label = "mq-dl+io.prio.class"

    def configure(self, hierarchy: CgroupHierarchy, device_ids: list[str]) -> None:
        for path, class_name in self.classes.items():
            hierarchy.find(path).write("io.prio.class", class_name)


@dataclass
class BfqKnob(KnobConfig):
    """BFQ + io.bfq.weight.

    ``weights`` maps cgroup paths to absolute weights (1-1000).
    ``slice_idle_us=0`` disables idling, as the paper does for the
    overhead experiments (§V); the prioritization experiments need it on.
    ``low_latency`` is always disabled, as in the paper (§III).
    """

    weights: dict[str, int] = field(default_factory=dict)
    slice_idle_us: float = 2_000.0
    slice_budget_bytes: int = 1024 * 1024
    slice_timeout_us: float = 25_000.0

    profile_name = "bfq"
    scheduler_name = "bfq"
    label = "bfq+io.bfq.weight"

    def configure(self, hierarchy: CgroupHierarchy, device_ids: list[str]) -> None:
        for path, weight in self.weights.items():
            hierarchy.find(path).write("io.bfq.weight", str(weight))


@dataclass
class IoMaxKnob(KnobConfig):
    """io.max static limits.

    ``limits`` maps a cgroup path to per-key limits, e.g.
    ``{"/tenants/a": {"rbps": 100 * MIB}}``. Limits apply to every
    device in the scenario unless ``per_device`` narrows them.
    """

    limits: dict[str, dict[str, float]] = field(default_factory=dict)

    profile_name = "io.max"
    scheduler_name = "none"
    label = "io.max"

    def configure(self, hierarchy: CgroupHierarchy, device_ids: list[str]) -> None:
        for path, keyvals in self.limits.items():
            group = hierarchy.find(path)
            rendered = " ".join(
                f"{key}={'max' if math.isinf(value) else int(value)}"
                for key, value in sorted(keyvals.items())
            )
            for device_id in device_ids:
                group.write("io.max", f"{device_id} {rendered}")


@dataclass
class DynamicIoMaxKnob(KnobConfig):
    """io.max under active management (PAIO/Tango-style, §VII).

    No static limits are written; a :class:`~repro.iocontrol.dynamic_iomax.
    DynamicIoMaxManager` re-translates ``weights`` into io.max limits over
    the currently active groups every ``adjust_period_us``.
    """

    weights: dict[str, int] = field(default_factory=dict)
    adjust_period_us: float = 100_000.0
    idle_floor_fraction: float = 0.05

    profile_name = "io.max"
    scheduler_name = "none"
    label = "io.max (managed)"


@dataclass
class IoLatencyKnob(KnobConfig):
    """io.latency per-group P90 targets (microseconds)."""

    targets_us: dict[str, float] = field(default_factory=dict)

    profile_name = "io.latency"
    scheduler_name = "none"
    label = "io.latency"

    def configure(self, hierarchy: CgroupHierarchy, device_ids: list[str]) -> None:
        for path, target in self.targets_us.items():
            group = hierarchy.find(path)
            for device_id in device_ids:
                group.write("io.latency", f"{device_id} target={target:g}")


@dataclass
class IoCostKnob(KnobConfig):
    """io.cost + io.weight.

    ``model=None`` derives a model from the scenario's SSD (the paper's
    iocost_coef_gen workflow, with its conservatism); pass explicit
    :class:`IoCostModelParams` for the model-accuracy ablation.
    ``qos`` defaults to enabled with no latency target and a full
    25-100% vrate window; the paper's experiments override rlat/min/max.
    ``weights`` maps cgroup paths to io.weight values (1-10000).
    """

    weights: dict[str, int] = field(default_factory=dict)
    model: Optional[IoCostModelParams] = None
    qos: IoCostQosParams = field(
        default_factory=lambda: IoCostQosParams(enable=True, ctrl="user")
    )
    model_conservatism: float = 0.78

    profile_name = "io.cost"
    scheduler_name = "none"
    label = "io.cost+io.weight"

    def resolve_model(self, ssd: SsdModel) -> IoCostModelParams:
        """The model actually installed: explicit, or derived from ``ssd``."""
        if self.model is not None:
            return self.model
        from repro.tools.iocost_coef_gen import derive_model

        return derive_model(ssd, conservatism=self.model_conservatism)

    def configure(self, hierarchy: CgroupHierarchy, device_ids: list[str]) -> None:
        # io.cost.model / io.cost.qos are root-only knobs.
        for device_id in device_ids:
            qos = self.qos
            hierarchy.root.write(
                "io.cost.qos",
                f"{device_id} enable={int(qos.enable)} ctrl={qos.ctrl} "
                f"rpct={qos.rpct:g} rlat={qos.rlat_us:g} "
                f"wpct={qos.wpct:g} wlat={qos.wlat_us:g} "
                f"min={qos.vrate_min_pct:g} max={qos.vrate_max_pct:g}",
            )
        for path, weight in self.weights.items():
            hierarchy.find(path).write("io.weight", str(weight))


@dataclass
class Scenario:
    """One complete isol-bench run description."""

    name: str
    knob: KnobConfig
    apps: list[JobSpec]
    ssd_model: SsdModel = field(default_factory=samsung_980pro_like)
    num_devices: int = 1
    cores: int = 10
    duration_s: float = 1.0
    warmup_s: float = 0.2
    seed: int = 42
    preconditioned: bool = False
    # Slow the whole system down by this factor (pure time dilation;
    # event-count control for benches). See DESIGN.md "Simulation scale".
    device_scale: float = 1.0
    # Page-cache tunables for buffered (direct=False) jobs; None uses
    # defaults when any buffered job is present.
    page_cache: object | None = None
    # Observability: None (the default) keeps tracing and sampling fully
    # off -- no hooks are installed and the event loop runs the bare hot
    # path. A repro.obs.TraceConfig turns on request-lifecycle spans
    # and/or io.stat-style periodic sampling.
    trace: Optional[TraceConfig] = None
    # Fault injection: None (the default) wires no fault runtime at all
    # -- devices and the completion path behave exactly as before. A
    # repro.faults.FaultPlan installs per-device injectors plus the
    # host-side retry/timeout coordinator; the plan participates in the
    # exec cache key like every other field. Time-valued plan fields are
    # interpreted at device scale 1 and dilated by device_scale when the
    # host is wired.
    faults: Optional[FaultPlan] = None
    # Self-profiling: None (the default) runs the bare event loop; a
    # repro.prof.ProfConfig switches the host onto the profiled loop,
    # which attributes every fired callback's wall-clock time to a
    # pipeline phase. Profiling never changes simulation results
    # (bit-identity is test-pinned), but like tracing the artifact
    # lives on the Host, so profiled scenarios bypass the result cache.
    prof: Optional[ProfConfig] = None
    # Online control: None (the default) wires no control plane -- knob
    # files stay exactly as the static config wrote them. A
    # repro.ctl.CtlConfig attaches a dedicated (non-retaining) sampler
    # plus the controller matching the scenario's knob type, which
    # rewrites knob files mid-run from live SLO drift. Deterministic on
    # the sim clock, so ctl scenarios cache normally; the config
    # participates in the exec cache key like every other field.
    # Time-valued ctl fields are raw simulated microseconds (the
    # ActivityWindow convention -- already-dilated timelines).
    ctl: Optional["CtlConfig"] = None

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("a scenario needs at least one app")
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.warmup_s < self.duration_s:
            raise ValueError("warmup must be inside the run duration")
        names = [spec.name for spec in self.apps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate app names in scenario: {sorted(names)}")

    @property
    def duration_us(self) -> float:
        return self.duration_s * 1e6

    @property
    def warmup_us(self) -> float:
        return self.warmup_s * 1e6

    def device_ids(self) -> list[str]:
        return [device_id_for_index(i) for i in range(self.num_devices)]
