"""Operational tooling: io.cost model generation and the CLI."""

from repro.tools.iocost_coef_gen import calibrate_model, derive_model, format_model_line

__all__ = ["derive_model", "calibrate_model", "format_model_line"]
