"""Unit tests for open-loop (Poisson-arrival) workloads."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.workloads.generator import App
from repro.workloads.spec import ActivityWindow, JobSpec


def run_open_loop(spec, duration_us, complete_after_us=10.0):
    sim = Simulator()
    submitted = []
    app_holder = []

    def submit(req):
        submitted.append((sim.now, req))
        sim.schedule(complete_after_us, lambda: app_holder[0].on_complete(req))

    app = App(sim, spec, submit, random.Random(0))
    app_holder.append(app)
    app.start()
    sim.run_until(duration_us)
    return submitted, app


class TestSpecValidation:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            JobSpec(name="j", cgroup_path="/g", arrival_rate_iops=0.0)

    def test_rate_limit_conflict_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="j",
                cgroup_path="/g",
                arrival_rate_iops=100.0,
                rate_limit_bps=1e6,
            )


class TestArrivals:
    def test_mean_rate_approximates_lambda(self):
        spec = JobSpec(name="j", cgroup_path="/g", arrival_rate_iops=10_000.0)
        submitted, _ = run_open_loop(spec, duration_us=1_000_000.0)
        # 10K IOPS over 1 simulated second.
        assert 8_500 <= len(submitted) <= 11_500

    def test_arrivals_independent_of_completions(self):
        # Completions take forever; a closed-loop app would stall at QD.
        spec = JobSpec(
            name="j", cgroup_path="/g", arrival_rate_iops=1_000.0, queue_depth=1
        )
        submitted, app = run_open_loop(
            spec, duration_us=100_000.0, complete_after_us=1e9
        )
        assert len(submitted) > 50
        assert app.outstanding == len(submitted)  # backlog grows unbounded

    def test_arrivals_confined_to_window(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            arrival_rate_iops=10_000.0,
            windows=(ActivityWindow(100_000.0, 200_000.0),),
        )
        submitted, _ = run_open_loop(spec, duration_us=400_000.0)
        assert submitted
        assert all(100_000.0 <= t < 200_000.0 for t, _ in submitted)

    def test_multiple_windows_each_get_arrivals(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            arrival_rate_iops=10_000.0,
            windows=(
                ActivityWindow(0.0, 50_000.0),
                ActivityWindow(100_000.0, 150_000.0),
            ),
        )
        submitted, _ = run_open_loop(spec, duration_us=200_000.0)
        first = [t for t, _ in submitted if t < 50_000.0]
        second = [t for t, _ in submitted if 100_000.0 <= t < 150_000.0]
        gap = [t for t, _ in submitted if 50_000.0 <= t < 100_000.0]
        assert first and second
        assert not gap

    def test_no_double_rate_across_windows(self):
        # Each window runs exactly one arrival chain.
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            arrival_rate_iops=10_000.0,
            windows=(
                ActivityWindow(0.0, 100_000.0),
                ActivityWindow(100_000.0, 200_000.0),
            ),
        )
        submitted, _ = run_open_loop(spec, duration_us=200_000.0)
        in_second = sum(1 for t, _ in submitted if t >= 100_000.0)
        # ~1000 expected at 10K IOPS over 0.1s; double-chaining would
        # give ~2000.
        assert in_second < 1_500

    def test_deterministic_for_seed(self):
        spec = JobSpec(name="j", cgroup_path="/g", arrival_rate_iops=5_000.0)
        a, _ = run_open_loop(spec, duration_us=100_000.0)
        b, _ = run_open_loop(spec, duration_us=100_000.0)
        assert [t for t, _ in a] == [t for t, _ in b]
