"""ScenarioSummary: serialization contract and accessor parity.

The summary is what crosses process boundaries and lives in the result
cache, so the tests here pin its three guarantees: it pickles and
JSON-round-trips unchanged, it never smuggles the live Host along, and
every accessor the figure/table modules use agrees with the equivalent
ScenarioResult accessor on the same run.
"""

import json
import pickle

import pytest

from repro.core.config import NoneKnob, Scenario
from repro.core.runner import run_scenario
from repro.exec.summary import ScenarioSummary, summarize
from repro.ssd.presets import samsung_980pro_like
from repro.workloads.apps import batch_app, lc_app


@pytest.fixture(scope="module")
def run_pair():
    """One small two-cgroup run, as (ScenarioResult, ScenarioSummary)."""
    scenario = Scenario(
        name="summary-contract",
        knob=NoneKnob(),
        apps=[
            batch_app("batch0", "/tenants/a"),
            lc_app("lc0", "/tenants/b"),
        ],
        ssd_model=samsung_980pro_like(),
        duration_s=0.08,
        warmup_s=0.02,
        seed=7,
        device_scale=8.0,
    )
    result = run_scenario(scenario)
    return result, summarize(result)


class TestSerialization:
    def test_pickle_round_trip(self, run_pair):
        _, summary = run_pair
        clone = pickle.loads(pickle.dumps(summary))
        assert isinstance(clone, ScenarioSummary)
        assert clone.content_equal(summary)
        # Full equality including wall_seconds: pickling loses nothing.
        assert clone.to_json_dict() == summary.to_json_dict()

    def test_json_round_trip(self, run_pair):
        _, summary = run_pair
        text = json.dumps(summary.to_json_dict())
        clone = ScenarioSummary.from_json_dict(json.loads(text))
        assert clone.content_equal(summary)
        assert clone.apps.keys() == summary.apps.keys()
        assert clone.cpu == summary.cpu

    def test_no_host_attribute(self, run_pair):
        _, summary = run_pair
        assert not hasattr(summary, "host")
        assert "host" not in summary.to_json_dict()

    def test_content_equal_ignores_wall_seconds(self, run_pair):
        _, summary = run_pair
        clone = pickle.loads(pickle.dumps(summary))
        clone.wall_seconds = summary.wall_seconds + 123.0
        assert clone.content_equal(summary)
        clone.seed += 1
        assert not clone.content_equal(summary)


class TestAccessorParity:
    def test_window(self, run_pair):
        result, summary = run_pair
        assert summary.t_start_us == result.t_start_us
        assert summary.t_end_us == result.t_end_us
        assert summary.window_us == result.window_us

    def test_app_stats(self, run_pair):
        result, summary = run_pair
        for name in summary.app_names():
            assert summary.app_stats(name) == result.app_stats(name)
        assert summary.all_app_stats() == result.all_app_stats()

    def test_cgroup_stats(self, run_pair):
        result, summary = run_pair
        assert summary.cgroup_stats() == result.cgroup_stats()

    def test_window_latencies(self, run_pair):
        result, summary = run_pair
        for name in summary.app_names():
            assert summary.window_latencies(
                name, result.t_start_us, result.t_end_us
            ) == result.collector.window_latencies(
                name, result.t_start_us, result.t_end_us
            )

    def test_bandwidth_and_fairness(self, run_pair):
        result, summary = run_pair
        assert summary.aggregate_bandwidth_gib_s == result.aggregate_bandwidth_gib_s
        assert summary.equivalent_bandwidth_gib_s == result.equivalent_bandwidth_gib_s
        weights = {"/tenants/a": 1.0, "/tenants/b": 1.0}
        assert summary.fairness(weights) == result.fairness(weights)

    def test_series_of(self, run_pair):
        result, summary = run_pair
        for name in summary.app_names():
            assert summary.series_of(name) == result.collector.series_of(name)

    def test_counters_and_labels(self, run_pair):
        result, summary = run_pair
        assert summary.events_processed == result.events_processed
        assert summary.scenario_name == result.scenario.name
        assert summary.knob_label == result.scenario.knob.label
        assert summary.work_conservation_violation == result.work_conservation_violation

    def test_describe_mentions_every_app(self, run_pair):
        _, summary = run_pair
        text = summary.describe()
        for name in summary.app_names():
            assert name in text
