"""Dynamic io.max management (the paper's cited remedy for O8).

io.max is static: the paper notes that weighted fairness through io.max
"requires practitioners to dynamically translate weights to maximums and
adjust values as new groups start or stop" (§VII), citing PAIO [60] and
Tango [70] as systems that do exactly that. This module implements that
practitioner: a userspace-style control loop that

1. observes which cgroups did I/O in the last adjustment window,
2. re-translates the configured weights into per-group ``io.max`` limits
   over the *active* set (idle groups release their share),
3. rewrites the knob files and invalidates the controller's buckets.

The manager is the original one-off that :mod:`repro.ctl` generalizes:
it now runs as a *self-driving* :class:`~repro.ctl.base.Controller`
(``start()`` arms its own periodic observe/actuate tick) with event
timing and knob writes identical to the pre-refactor loop -- pinned by
``tests/integration/test_dynamic_iomax_golden.py``. The ablation bench
compares static vs managed io.max on a start/stop timeline: the manager
restores work conservation while keeping the weighted split.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.ctl.base import Actuation, ControlObservation, Controller
from repro.iocontrol.iomax import IoMaxController
from repro.sim.engine import Simulator


class DynamicIoMaxManager(Controller):
    """Periodic weight -> io.max re-translation over the active set."""

    name = "dynamic-iomax"

    def __init__(
        self,
        sim: Simulator,
        hierarchy: CgroupHierarchy,
        controller: IoMaxController,
        weights: dict[str, float],
        max_read_bps: float,
        bytes_completed_of: Callable[[str], int],
        device_id: str,
        adjust_period_us: float = 100_000.0,
        idle_floor_fraction: float = 0.05,
    ):
        """``bytes_completed_of(path)`` reads a group's lifetime byte count.

        Groups whose count did not advance during a window are treated as
        idle and demoted to a small floor limit (they re-earn their share
        one window after resuming -- the reconfiguration lag inherent to
        this approach).
        """
        if adjust_period_us <= 0:
            raise ValueError("adjustment period must be positive")
        if not 0.0 < idle_floor_fraction < 1.0:
            raise ValueError("idle floor must be in (0, 1)")
        if not weights:
            raise ValueError("manager needs at least one weighted group")
        super().__init__(sim, adjust_period_us)
        self.hierarchy = hierarchy
        self.controller = controller
        self.weights = dict(weights)
        self.max_read_bps = max_read_bps
        self.bytes_completed_of = bytes_completed_of
        self.device_id = device_id
        self.adjust_period_us = adjust_period_us
        self.idle_floor_fraction = idle_floor_fraction
        self._last_bytes: dict[str, int] = {path: 0 for path in weights}
        self._last_limits: dict[str, float] = {}
        self._active: set[str] = set(weights)
        self.adjustments = 0

    def on_start(self) -> None:
        """Initial full split before the first adjustment window."""
        self._apply(active=set(self.weights))

    def observe(self, obs: Optional[ControlObservation]) -> None:
        """Detect the active set from per-group byte-counter deltas.

        Self-driving: the manager polls the collector directly and
        ignores the (always-None) plane observation.
        """
        active = set()
        for path in self.weights:
            current = self.bytes_completed_of(path)
            if current > self._last_bytes[path]:
                active.add(path)
            self._last_bytes[path] = current
        if not active:
            active = set(self.weights)  # nothing ran; keep the full split
        self._active = active

    def actuate(self) -> list[Actuation]:
        """Re-translate weights over the observed active set."""
        return self._apply(self._active)

    def _apply(self, active: set[str]) -> list[Actuation]:
        """Split the device among active groups by weight."""
        total = sum(self.weights[path] for path in active)
        floor = self.max_read_bps * self.idle_floor_fraction / max(1, len(self.weights))
        records = []
        for path, weight in self.weights.items():
            if path in active:
                limit = self.max_read_bps * weight / total
            else:
                limit = floor
            group = self.hierarchy.find(path)
            group.write(
                "io.max", f"{self.device_id} rbps={int(limit)} wbps={int(limit)}"
            )
            records.append(
                Actuation(
                    t_us=self.sim.now,
                    controller=self.name,
                    knob="io.max",
                    cgroup=path,
                    previous=self._last_limits.get(path, limit),
                    value=limit,
                    applied=True,
                    reason="reweight" if path in active else "idle-floor",
                )
            )
            self._last_limits[path] = limit
        self.controller.invalidate()
        self.adjustments += 1
        return records
