"""io.cost: vtime-based work budgeting (blk-iocost) plus io.weight.

The controller follows the design of Heo et al.'s IOCost (ASPLOS'22) as
summarized in the paper's §IV-B:

* a **linear cost model** (``io.cost.model``) prices every request in
  *device microseconds*: a per-I/O coefficient (sequential or random,
  per direction) plus a per-page coefficient, derived from the six
  throughput parameters exactly as blk-iocost derives its coefficients;
* a **global virtual clock** ``vnow`` advances at ``vrate`` device-us per
  wall-us; each active cgroup owns a vtime and may dispatch only while
  its vtime stays within a margin of ``vnow``. A request charges
  ``abs_cost / hierarchical_weight_share`` to its group's vtime, so
  throughput is proportional to io.weight (D2/D3) and expensive ops
  (writes, large requests) consume proportionally more budget -- the
  reason io.cost handles mixed workloads where io.latency/io.max fail
  (O9) and also why it *prefers reads* in mixed read/write fairness
  (O5, Fig. 6b);
* a **QoS loop** (``io.cost.qos``): each period, completion-latency
  percentiles are compared against rlat/wlat; violations scale ``vrate``
  down and health scales it back up, clamped to the min/max percentages.
  A conservative model or a high ``min`` directly caps aggregate
  bandwidth (Fig. 5a's 1.26 GiB/s);
* **activation tracking**: only groups with recent I/O count toward the
  weight denominator, so a bursting group picks up its share within
  milliseconds (O10) -- in contrast to io.latency's 500 ms windows.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.cgroups.hierarchy import Cgroup, CgroupHierarchy
from repro.cgroups.knobs import IoCostModelParams, IoCostQosParams
from repro.iocontrol.base import ForwardFn, ThrottleLayer
from repro.iocontrol.weights import hierarchical_shares
from repro.iorequest import IoRequest, OpType, Pattern
from repro.metrics.latency import percentile
from repro.sim.engine import Simulator

PAGE_SIZE = 4096


@dataclass(frozen=True)
class CostCoefficients:
    """Per-direction linear cost coefficients, in device-microseconds."""

    page_us: float
    rand_us: float
    seq_us: float


def cost_coefficients(params: IoCostModelParams) -> dict[OpType, CostCoefficients]:
    """Derive blk-iocost-style coefficients from the six model params.

    ``page_us`` comes from the bandwidth term; the per-I/O terms are the
    residual cost of a 4 KiB random/sequential op after the page cost.
    """
    coefs: dict[OpType, CostCoefficients] = {}
    for op, bps, seqiops, randiops in (
        (OpType.READ, params.rbps, params.rseqiops, params.rrandiops),
        (OpType.WRITE, params.wbps, params.wseqiops, params.wrandiops),
    ):
        page_us = 1e6 * PAGE_SIZE / bps if bps > 0 else 0.0
        rand_us = max(0.0, 1e6 / randiops - page_us) if randiops > 0 else 0.0
        seq_us = max(0.0, 1e6 / seqiops - page_us) if seqiops > 0 else 0.0
        coefs[op] = CostCoefficients(page_us=page_us, rand_us=rand_us, seq_us=seq_us)
    return coefs


def abs_cost_us(coefs: dict[OpType, CostCoefficients], req: IoRequest) -> float:
    """Absolute cost of one request at 100% vrate."""
    c = coefs[req.op]
    fixed = c.rand_us if req.pattern == Pattern.RANDOM else c.seq_us
    return fixed + c.page_us * (req.size / PAGE_SIZE)


class _GroupCostState:
    """Per-(cgroup, device) vtime state."""

    __slots__ = (
        "group",
        "vtime",
        "pending",
        "in_flight",
        "last_active",
        "timer_armed",
        "timer_event",
        "window_charged",
        "pending_cost",
    )

    def __init__(self, group: Cgroup, vnow: float):
        self.group = group
        self.vtime = vnow
        # Entries are (req, forward, abs_cost): the linear-model cost is
        # priced once at submission and travels with the request.
        self.pending: deque[tuple[IoRequest, ForwardFn, float]] = deque()
        self.in_flight = 0
        self.last_active = 0.0
        self.timer_armed = False
        self.timer_event = None
        # abs-cost admitted in the current period (donation bookkeeping).
        self.window_charged = 0.0
        # abs-cost of requests currently held back.
        self.pending_cost = 0.0


class IoCostController(ThrottleLayer):
    """blk-iocost for one device."""

    name = "io.cost"

    PERIOD_US = 50_000.0
    # Vtime budget window: how far ahead of vnow a group may run.
    MARGIN_PERIODS = 1.0
    # A group with no I/O for this long leaves the active set.
    IDLE_TIMEOUT_US = 20_000.0
    MIN_QOS_SAMPLES = 8
    VRATE_DOWN_STEP = 0.85
    VRATE_UP_STEP = 1.10

    def __init__(
        self,
        sim: Simulator,
        hierarchy: CgroupHierarchy,
        device_id: str,
        model: IoCostModelParams,
        qos: IoCostQosParams,
    ):
        self.sim = sim
        self.hierarchy = hierarchy
        self.device_id = device_id
        self.model = model
        self.qos = qos
        self.coefs = cost_coefficients(model)
        # abs_cost_us depends only on (op, pattern, size); workloads use a
        # handful of shapes, so each is priced once.
        self._cost_cache: dict[tuple, float] = {}
        self._margin_us = self.MARGIN_PERIODS * self.PERIOD_US
        self._vrate_min = qos.vrate_min_pct / 100.0
        self._vrate_max = qos.vrate_max_pct / 100.0
        self.vrate = min(max(1.0, self._vrate_min), self._vrate_max)
        self._vnow = 0.0
        self._vnow_stamp = 0.0
        self._states: dict[str, _GroupCostState] = {}
        self._active: set[str] = set()
        self._shares: dict[str, float] = {}
        self._effective_shares: dict[str, float] = {}
        self._window_read_lat: list[float] = []
        self._window_write_lat: list[float] = []
        self._throttled_in_window = False

    # ------------------------------------------------------------------
    # Virtual clock
    # ------------------------------------------------------------------
    def vnow(self) -> float:
        now = self.sim.now
        self._vnow += (now - self._vnow_stamp) * self.vrate
        self._vnow_stamp = now
        return self._vnow

    @property
    def margin(self) -> float:
        return self._margin_us

    def _set_vrate(self, vrate: float) -> None:
        self.vnow()  # fold accrued time at the old rate first
        self.vrate = min(max(vrate, self._vrate_min), self._vrate_max)

    def refresh_qos(self) -> None:
        """Re-read ``io.cost.qos`` from the hierarchy (online re-tuning).

        The qos parameters are normally captured once at construction;
        a userspace control plane (:mod:`repro.ctl`) that rewrites the
        root qos file mid-run calls this to make the new vrate window
        (and latency targets) take effect, re-clamping the current
        vrate exactly as the kernel does on a qos write.
        """
        qos = self.hierarchy.root.read_parsed("io.cost.qos", self.device_id)
        if qos is None:
            return
        self.qos = qos
        self._vrate_min = qos.vrate_min_pct / 100.0
        self._vrate_max = qos.vrate_max_pct / 100.0
        self._set_vrate(self.vrate)

    # ------------------------------------------------------------------
    # Activation / weights
    # ------------------------------------------------------------------
    def _state(self, path: str) -> _GroupCostState:
        state = self._states.get(path)
        if state is None:
            state = _GroupCostState(self.hierarchy.find(path), self.vnow())
            self._states[path] = state
        return state

    def _recompute_shares(self) -> None:
        active_groups = [self._states[path].group for path in self._active]
        self._shares = hierarchical_shares(active_groups, lambda g: float(g.io_weight()))
        # Until the next donation pass, effective shares follow weights.
        self._effective_shares = dict(self._shares)

    def _donate_surplus(self) -> None:
        """blk-iocost's hweight donation, as per-period water-filling.

        A group that used less than its weight share last period donates
        the surplus to constrained groups (proportionally to their
        weights), so a high-weight tenant with low demand does not
        strand the device. Guaranteed minimum: a group's effective share
        never drops below its weight share while it has demand.
        """
        if not self._active:
            return
        capacity = self.vrate * self.PERIOD_US
        if capacity <= 0:
            return
        demands = {}
        for path in self._active:
            state = self._states[path]
            demand = state.window_charged + state.pending_cost
            # A group that was budget-throttled clearly wants more than
            # it got; treat its demand as open-ended.
            if state.pending_cost > 0 or state.timer_armed:
                demand = math.inf
            demands[path] = demand
        weights = {path: max(self._shares.get(path, 0.0), 1e-9) for path in self._active}
        allocations = _water_fill(weights, demands, capacity)
        self._effective_shares = {
            path: max(alloc / capacity, 1e-6) for path, alloc in allocations.items()
        }

    def _activate(self, state: _GroupCostState) -> None:
        if state.group.path not in self._active:
            self._active.add(state.group.path)
            # A group (re)joining starts at vnow: no banked credit.
            state.vtime = max(state.vtime, self.vnow())
            self._recompute_shares()

    def _deactivate_idle(self) -> None:
        now = self.sim.now
        stale = [
            path
            for path in self._active
            if (state := self._states[path]).in_flight == 0
            and not state.pending
            and now - state.last_active > self.IDLE_TIMEOUT_US
        ]
        if stale:
            self._active.difference_update(stale)
            self._recompute_shares()

    def hweight_of(self, path: str) -> float:
        """Current hierarchical weight share of a group (0 if inactive)."""
        return self._shares.get(path, 0.0)

    def effective_share_of(self, path: str) -> float:
        """Share after surplus donation (0 if inactive)."""
        return self._effective_shares.get(path, 0.0)

    def pending(self) -> int:
        return sum(len(state.pending) for state in self._states.values())

    def snapshot(self) -> dict[str, float]:
        """vrate plus per-group budget state, like iocost_monitor.py."""
        row = super().snapshot()
        row["vrate_pct"] = self.vrate * 100.0
        row["active_groups"] = float(len(self._active))
        vnow = self.vnow()
        for path, state in self._states.items():
            # Positive debt: how far the group's vtime runs ahead of the
            # global clock (it will be throttled once past the margin).
            row[f"group.{path}.vtime_debt_us"] = state.vtime - vnow
            row[f"group.{path}.pending"] = float(len(state.pending))
            row[f"group.{path}.in_flight"] = float(state.in_flight)
            row[f"group.{path}.hweight_pct"] = self._shares.get(path, 0.0) * 100.0
            row[f"group.{path}.effective_share_pct"] = (
                self._effective_shares.get(path, 0.0) * 100.0
            )
        return row

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule(self.PERIOD_US, self._period_tick)

    def submit(self, req: IoRequest, forward: ForwardFn) -> None:
        state = self._states.get(req.cgroup_path)
        if state is None:
            state = self._state(req.cgroup_path)
        state.last_active = self.sim.now
        self._activate(state)
        key = (req.op, req.pattern, req.size)
        abs_cost = self._cost_cache.get(key)
        if abs_cost is None:
            abs_cost = self._cost_cache[key] = abs_cost_us(self.coefs, req)
        state.pending.append((req, forward, abs_cost))
        state.pending_cost += abs_cost
        self._drain(state)

    def on_complete(self, req: IoRequest) -> None:
        state = self._states.get(req.cgroup_path)
        if state is not None and state.in_flight > 0:
            state.in_flight -= 1
        # Block-layer completion latency, measured at device completion.
        latency = self.sim.now - req.queued_time
        if req.op == OpType.READ:
            self._window_read_lat.append(latency)
        else:
            self._window_write_lat.append(latency)

    def _drain(self, state: _GroupCostState) -> None:
        if state.timer_armed:
            return
        margin = self._margin_us
        effective_shares = self._effective_shares
        group_path = state.group.path
        sim = self.sim
        while state.pending:
            req, forward, abs_cost = state.pending[0]
            share = effective_shares.get(group_path, 0.0)
            if share <= 0.0:
                # Should not happen while pending I/O keeps the group
                # active; guard against a zero-weight configuration.
                share = 1e-6
            cost_v = abs_cost / share
            # vnow() inlined: fold wall time into the virtual clock.
            now = sim.now
            self._vnow += (now - self._vnow_stamp) * self.vrate
            self._vnow_stamp = now
            vnow = self._vnow
            if state.vtime < vnow - margin:
                state.vtime = vnow - margin
            if state.vtime + cost_v <= vnow + margin:
                state.vtime += cost_v
                state.pending.popleft()
                state.pending_cost = max(0.0, state.pending_cost - abs_cost)
                state.window_charged += abs_cost
                state.in_flight += 1
                req.abs_cost = abs_cost
                forward(req)
                continue
            # Over budget: wake up when vnow has advanced far enough.
            self._throttled_in_window = True
            deficit_v = state.vtime + cost_v - margin - vnow
            delay_us = max(1.0, deficit_v / self.vrate)
            state.timer_armed = True
            state.timer_event = self.sim.schedule(
                delay_us, lambda s=state: self._timer_fire(s)
            )
            return

    def _timer_fire(self, state: _GroupCostState) -> None:
        state.timer_armed = False
        state.timer_event = None
        self._drain(state)

    # ------------------------------------------------------------------
    # QoS control loop
    # ------------------------------------------------------------------
    def _period_tick(self) -> None:
        self._adjust_vrate()
        self._deactivate_idle()
        self._donate_surplus()
        for state in self._states.values():
            state.window_charged = 0.0
        self._window_read_lat.clear()
        self._window_write_lat.clear()
        self._throttled_in_window = False
        # Budget availability may have shifted; re-evaluate throttled
        # groups against their new effective shares.
        for path in self._active:
            state = self._states[path]
            if state.pending:
                if state.timer_event is not None:
                    self.sim.cancel(state.timer_event)
                    state.timer_event = None
                    state.timer_armed = False
                self._drain(state)
        self.sim.schedule(self.PERIOD_US, self._period_tick)

    def _qos_violated(self) -> bool:
        if not self.qos.enable:
            return False
        if self.qos.rlat_us > 0 and len(self._window_read_lat) >= self.MIN_QOS_SAMPLES:
            if percentile(self._window_read_lat, self.qos.rpct) > self.qos.rlat_us:
                return True
        if self.qos.wlat_us > 0 and len(self._window_write_lat) >= self.MIN_QOS_SAMPLES:
            if percentile(self._window_write_lat, self.qos.wpct) > self.qos.wlat_us:
                return True
        return False

    def _adjust_vrate(self) -> None:
        had_io = bool(self._window_read_lat or self._window_write_lat)
        if self._qos_violated():
            self._set_vrate(self.vrate * self.VRATE_DOWN_STEP)
        elif had_io and self.vrate < self._vrate_max:
            self._set_vrate(self.vrate * self.VRATE_UP_STEP)


def _water_fill(
    weights: dict[str, float],
    demands: dict[str, float],
    capacity: float,
) -> dict[str, float]:
    """Distribute ``capacity`` by weight, capped at each group's demand.

    Iterative water-filling: satisfied groups (demand below their
    proportional slice) are capped and removed; their surplus is
    redistributed among the rest by weight. Groups with open-ended
    demand absorb whatever remains.
    """
    allocations = {path: 0.0 for path in weights}
    remaining = capacity
    unsatisfied = dict(weights)
    while unsatisfied and remaining > 1e-9:
        total_weight = sum(unsatisfied.values())
        capped = []
        for path, weight in unsatisfied.items():
            slice_ = remaining * weight / total_weight
            headroom = demands[path] - allocations[path]
            if headroom <= slice_:
                capped.append((path, max(headroom, 0.0)))
        if not capped:
            for path, weight in unsatisfied.items():
                allocations[path] += remaining * weight / total_weight
            remaining = 0.0
            break
        for path, amount in capped:
            allocations[path] += amount
            remaining -= amount
            del unsatisfied[path]
    return allocations
