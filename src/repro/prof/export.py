"""Profile exporters: text table, pstats dump, Chrome trace.

Mirrors :mod:`repro.obs.export` conventions: plain functions taking the
artifact and a path. The pstats dump is loadable with the standard
library (``pstats.Stats("profile.pstats")``) so existing profiling
tooling — ``sort_stats``, snakeviz, gprof2dot — works on simulator
phases; the Chrome export merges with a request-span
:class:`~repro.obs.export.Trace` so profiler series and request
timelines render side by side in Perfetto.
"""

from __future__ import annotations

import json
import marshal

from repro.prof.profiler import SimProfile

#: Viewer process id for profiler counter tracks. repro.obs uses pid 0
#: for the stack sampler and 1..N for apps; 10_000 keeps clear of both.
PROF_PID = 10_000

#: Pseudo-filename for pstats entries (pstats prints it as-is; the
#: leading "~" sorts synthetic entries last, as cProfile does for
#: builtins).
_PSTATS_FILE = "~repro.prof"


def format_phase_table(profile: SimProfile) -> str:
    """Render a pstats-style per-phase breakdown as aligned text."""
    lines = [
        f"{'phase':<12s} {'events':>10s} {'wall s':>9s} {'%loop':>7s} {'us/event':>9s}"
    ]
    loop = profile.loop_wall_seconds
    ordered = sorted(
        profile.phase_wall.items(), key=lambda item: item[1], reverse=True
    )
    for phase, wall in ordered:
        events = profile.phase_events.get(phase, 0)
        pct = 100.0 * wall / loop if loop > 0 else 0.0
        per_event = 1e6 * wall / events if events else 0.0
        lines.append(
            f"{phase:<12s} {events:>10,d} {wall:>9.3f} {pct:>6.1f}% {per_event:>9.2f}"
        )
    lines.append(
        f"{'loop total':<12s} {profile.events_accounted:>10,d} {loop:>9.3f} "
        f"(coverage {100.0 * profile.coverage():.1f}%)"
    )
    if profile.span_wall:
        lines.append("")
        lines.append(f"{'span':<12s} {'enters':>10s} {'wall s':>9s}")
        for name, wall in sorted(
            profile.span_wall.items(), key=lambda item: item[1], reverse=True
        ):
            enters = profile.span_events.get(name, 0)
            lines.append(f"{name:<12s} {enters:>10,d} {wall:>9.3f}")
    return "\n".join(lines)


def write_pstats(profile: SimProfile, path: str) -> None:
    """Write a ``pstats.Stats``-loadable dump, one entry per phase.

    Each phase becomes a synthetic function ``(~repro.prof, 0, phase)``
    with call count = events fired in that phase and total/cumulative
    time = the phase's wall-clock seconds (phases are exclusive, so
    tt == ct).
    """
    stats: dict = {}
    for phase, wall in profile.phase_wall.items():
        events = max(1, profile.phase_events.get(phase, 0))
        stats[(_PSTATS_FILE, 0, phase)] = (events, events, wall, wall, {})
    for name, wall in profile.span_wall.items():
        enters = max(1, profile.span_events.get(name, 0))
        stats[(_PSTATS_FILE, 0, f"span:{name}")] = (enters, enters, wall, wall, {})
    with open(path, "wb") as fh:
        marshal.dump(stats, fh)


def chrome_profile_events(profile: SimProfile) -> list[dict]:
    """Build Chrome ``traceEvents`` for a profile.

    With timeline buckets, each phase becomes a counter track
    (``prof.<phase>``, milliseconds of wall-clock per bucket) on the
    profiler's viewer process, keyed by *simulated* time so the tracks
    align with request spans. Without buckets a single sample at t=0
    carries the totals.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": PROF_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "engine profiler (wall-clock ms)"},
        }
    ]
    if profile.buckets:
        for row in profile.buckets:
            ts = row["t_us"] - profile.bucket_us
            for key, wall in row.items():
                if key == "t_us":
                    continue
                events.append(
                    {
                        "ph": "C",
                        "name": f"prof.{key}",
                        "pid": PROF_PID,
                        "tid": 0,
                        "ts": ts,
                        "args": {"value": wall * 1e3},
                    }
                )
    else:
        for phase, wall in sorted(profile.phase_wall.items()):
            events.append(
                {
                    "ph": "C",
                    "name": f"prof.{phase}",
                    "pid": PROF_PID,
                    "tid": 0,
                    "ts": 0,
                    "args": {"value": wall * 1e3},
                }
            )
    return events


def write_chrome_trace(profile: SimProfile, path: str, trace=None) -> None:
    """Write a Perfetto-loadable JSON document for a profile.

    Pass the run's :class:`~repro.obs.export.Trace` as ``trace`` to
    merge request spans, sampler counters and profiler counters into
    one timeline document.
    """
    events = chrome_profile_events(profile)
    other_data: dict = {"profile": "repro.prof"}
    if trace is not None:
        from repro.obs.export import chrome_trace_events

        events = chrome_trace_events(trace) + events
        other_data.update(trace.meta)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
