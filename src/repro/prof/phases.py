"""Phase taxonomy: which stage of the request pipeline owns an event.

The profiled event loop attributes each fired callback to a *phase* by
the module that owns the callback's code object — the simulator is
callback-based, so "which module scheduled this work" is exactly "which
pipeline stage is running". The mapping is resolved once per distinct
code object and memoized, so the per-event cost is a single dict hit.

The taxonomy (stable names; new modules fall into ``other``):

========== ===========================================================
phase      what runs there
========== ===========================================================
engine.pop heap pop + loop bookkeeping (time between callbacks)
workload   app request issue / completion handling (repro.workloads)
cpu        per-I/O submit/complete CPU cost callbacks (repro.cpu)
throttle   cgroup controller decisions: io.max token refills,
           io.latency window evaluation, io.cost vtime accounting
           (repro.iocontrol.{iomax,iolatency,iocost,base,dynamic_iomax})
dispatch   scheduler dispatch: lock section, mq-deadline/bfq pop logic
           (repro.iocontrol.{dispatch,mq_deadline,bfq,nonectl})
device     device service-cost computation: flash unit + bus occupancy
           (repro.ssd, repro.sim.resources)
faults     fault injection + retry/watchdog machinery (repro.faults)
obs        span recording + stack-sampler emission (repro.obs)
pagecache  buffered-I/O page-cache machinery (repro.fs)
host       host-level glue callbacks (repro.core.host)
metrics    metrics collection callbacks (repro.metrics)
other      anything else (tests, examples, ad-hoc callbacks)
========== ===========================================================
"""

from __future__ import annotations

#: The synthetic phase charged with heap-pop + loop bookkeeping time.
ENGINE_POP = "engine.pop"

#: Phase name -> one-line description (docs + table rendering order).
PHASES: dict[str, str] = {
    ENGINE_POP: "event pop + loop bookkeeping",
    "workload": "app request issue/completion",
    "cpu": "per-I/O CPU cost accounting",
    "throttle": "cgroup controller decisions",
    "dispatch": "scheduler dispatch + lock section",
    "device": "device service-cost computation",
    "faults": "fault injection + retry machinery",
    "obs": "span recording + sampler emission",
    "pagecache": "page-cache machinery",
    "host": "host-level glue callbacks",
    "metrics": "metrics collection",
    "other": "uncategorized callbacks",
}

#: Path-fragment -> phase, first match wins (checked in order).
_FRAGMENT_PHASES: tuple[tuple[str, str], ...] = (
    ("repro/workloads/", "workload"),
    ("repro/cpu/", "cpu"),
    ("repro/iocontrol/dispatch", "dispatch"),
    ("repro/iocontrol/mq_deadline", "dispatch"),
    ("repro/iocontrol/bfq", "dispatch"),
    ("repro/iocontrol/nonectl", "dispatch"),
    ("repro/iocontrol/", "throttle"),
    ("repro/ssd/", "device"),
    ("repro/sim/resources", "device"),
    ("repro/faults/", "faults"),
    ("repro/obs/", "obs"),
    ("repro/fs/", "pagecache"),
    ("repro/core/host", "host"),
    ("repro/metrics/", "metrics"),
)


def phase_of_filename(filename: str) -> str:
    """Map a code object's ``co_filename`` to a phase name."""
    normalized = filename.replace("\\", "/")
    for fragment, phase in _FRAGMENT_PHASES:
        if fragment in normalized:
            return phase
    return "other"


def phase_of_code(code) -> str:
    """Map a callback's code object to its phase (uncached form).

    The profiler memoizes this per code object; call sites outside the
    hot loop can use it directly.
    """
    return phase_of_filename(code.co_filename)
