"""Deterministic Scenario -> fixed-width numeric feature vectors.

The surrogate model never sees a :class:`~repro.core.config.Scenario`
object directly -- it sees one row per ``(scenario, cgroup)`` pair,
produced here. The encoding is:

* **total**: every valid Scenario featurizes without raising, and every
  cell is a finite float (property-pinned in
  ``tests/property/test_surrogate_properties.py``);
* **fixed-width**: :func:`feature_names` is a frozen tuple; rows from
  different scenarios always align column-for-column;
* **permutation-stable**: per-group cells are sums / means / extrema
  over apps, so reordering ``scenario.apps`` (or the knob's settings
  dicts) never changes a vector;
* **device-normalized**: dimensionful knob settings are expressed in
  *saturation units* derived from
  :func:`~repro.ssd.model.describe_model_dict` -- an io.max cap becomes
  a fraction of the 4 KiB random saturation point, a latency target a
  multiple of the device's fixed read cost -- so one model generalizes
  across device presets and ``device_scale`` effort levels.

Targets (:func:`targets_from_summary`) use the same full-device-speed
unit conventions as :mod:`repro.tune.slo` and
:mod:`repro.fleet.interference`: p99 divides by ``device_scale``,
bandwidth multiplies by it, and a starved group reports the finite
:data:`~repro.fleet.interference.STARVED_P99_US` sentinel.
"""

from __future__ import annotations

import math

from repro.core.config import (
    BfqKnob,
    DynamicIoMaxKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    Scenario,
)
from repro.exec.summary import ScenarioSummary
from repro.iorequest import Pattern
from repro.ssd.model import describe_model_dict

#: Version of the feature encoding. Bump on any change to
#: :func:`feature_names` or the cell semantics; saved models record it
#: and refuse to score rows from a different encoding.
FEATURE_SCHEMA_VERSION = 1

#: The targets a surrogate predicts for one cgroup, in full-device-speed
#: units (microseconds, MiB/s, fraction of device saturation).
TARGET_NAMES = ("p99_us", "bandwidth_mib_s", "util")

#: Finite stand-in for an unbounded p99 (mirrors
#: ``repro.fleet.interference.STARVED_P99_US`` without importing fleet).
STARVED_P99_US = float(10**9)

#: Training-target ceiling for p99. Starved groups train (and predict)
#: at this cap rather than the 1e9 sentinel: in log space the sentinel
#: sits ~5 decades above any real latency, and a handful of starved
#: rows would dominate every fit and error metric. The cap still ranks
#: above every achievable p99, so "predicted starved" stays the worst
#: outcome a candidate can have.
TARGET_P99_CAP_US = float(10**6)

#: Knob identity classes, in one-hot order.
KNOB_KINDS = (
    "none",
    "mq-deadline",
    "bfq",
    "io.max",
    "io.max-managed",
    "io.latency",
    "io.cost",
)

#: Fault classes, in one-hot order ("none" for healthy scenarios,
#: "other" for plans whose label matches no registered class).
FAULT_KINDS = (
    "none",
    "latency-spike",
    "gc-storm",
    "slowdown",
    "transient-error",
    "timeout-storm",
    "other",
)

#: io.prio.class ordinal used for the MQ-Deadline class features.
_MQ_CLASS_ORDINAL = {"realtime": 1.0, "best-effort": 0.0, "idle": -1.0}

#: Hard cap applied to every cell: keeps ratios of near-zero references
#: finite and the design matrix well-conditioned.
_CELL_CAP = 1e6

_GLOBAL_NAMES = (
    "n_groups",
    "n_apps",
    "duration_s",
    "warmup_frac",
    "cores",
    "num_devices",
    "log2_device_scale",
    "total_qd",
    "total_arrival_frac",
    "total_rate_limit_frac",
    "mean_log2_size",
    "max_log2_size",
    "write_frac",
    "seq_frac",
    "buffered_frac",
    "active_frac",
    "has_ctl",
)

_KNOB_SETTING_NAMES = (
    "iomax_bps_frac_min",
    "iomax_iops_frac_min",
    "iolat_target_norm_min",
    "weight_log_ratio",
    "iocost_vrate_frac",
    "iocost_rlat_norm",
    "mq_rt_frac",
    "mq_idle_frac",
)

_GROUP_NAMES = (
    "g_n_apps",
    "g_qd_sum",
    "g_qd_share",
    "g_arrival_frac",
    "g_rate_limit_frac",
    "g_mean_log2_size",
    "g_max_log2_size",
    "g_write_frac",
    "g_seq_frac",
    "g_active_frac",
    "g_is_lc",
    "g_iomax_bps_frac",
    "g_iomax_iops_frac",
    "g_iolat_target_norm",
    "g_weight_log_rel",
    "g_mq_class",
    "o_qd_sum",
    "o_arrival_frac",
    "o_write_frac",
    "o_max_log2_size",
)


def feature_names() -> tuple[str, ...]:
    """The frozen, ordered column names of one feature row."""
    return (
        _GLOBAL_NAMES
        + tuple(f"knob_is_{kind}" for kind in KNOB_KINDS)
        + _KNOB_SETTING_NAMES
        + tuple(f"fault_is_{kind}" for kind in FAULT_KINDS)
        + _GROUP_NAMES
    )


def _finite(value: float, default: float = 0.0) -> float:
    """Coerce one cell to a finite, capped float."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        return default
    if not math.isfinite(value):
        return default
    return max(-_CELL_CAP, min(_CELL_CAP, value))


def _log2_size(size: int) -> float:
    """log2 of a request size in bytes (sizes are validated positive)."""
    return math.log2(max(1, size))


def _mean(values: list[float]) -> float:
    """Arithmetic mean, 0.0 for an empty list."""
    return sum(values) / len(values) if values else 0.0


def _mean_arrival_iops(spec) -> float:
    """A job's mean open-loop arrival rate (0.0 for closed-loop jobs)."""
    if spec.arrival_rate_iops is not None:
        return spec.arrival_rate_iops
    if spec.arrival_phases:
        weighted = sum(
            phase.rate_iops * (phase.stop_us - phase.start_us)
            for phase in spec.arrival_phases
            if math.isfinite(phase.stop_us)
        )
        span = sum(
            phase.stop_us - phase.start_us
            for phase in spec.arrival_phases
            if math.isfinite(phase.stop_us)
        )
        if span > 0:
            return weighted / span
        return _mean([phase.rate_iops for phase in spec.arrival_phases])
    return 0.0


def _active_fraction(spec, duration_us: float) -> float:
    """Fraction of the run during which the job issues I/O."""
    if duration_us <= 0:
        return 1.0
    covered = 0.0
    for window in spec.windows:
        start = min(window.start_us, duration_us)
        stop = min(window.stop_us, duration_us)
        covered += max(0.0, stop - start)
    return max(0.0, min(1.0, covered / duration_us))


def scenario_cgroups(scenario: Scenario) -> list[str]:
    """The scenario's cgroup paths, sorted (the row key order)."""
    return sorted({spec.cgroup_path for spec in scenario.apps})


class _DeviceRefs:
    """Full-speed saturation references for normalizing one scenario."""

    def __init__(self, scenario: Scenario):
        doc = describe_model_dict(scenario.ssd_model)
        read = doc["cases"]["rand-read-4k"]
        write = doc["cases"]["rand-write-4k"]
        self.read_bps = max(1.0, read["bandwidth_bps"])
        self.write_bps = max(1.0, write["bandwidth_bps"])
        self.read_iops = max(1.0, read["iops"])
        self.read_fixed_us = max(1e-9, doc["read_fixed_us"])
        self.scale = max(1e-9, scenario.device_scale)


def _knob_kind(scenario: Scenario) -> str:
    """The scenario knob's identity class (one of :data:`KNOB_KINDS`)."""
    knob = scenario.knob
    if isinstance(knob, DynamicIoMaxKnob):
        return "io.max-managed"
    if isinstance(knob, IoMaxKnob):
        return "io.max"
    if isinstance(knob, MqDeadlineKnob):
        return "mq-deadline"
    if isinstance(knob, BfqKnob):
        return "bfq"
    if isinstance(knob, IoLatencyKnob):
        return "io.latency"
    if isinstance(knob, IoCostKnob):
        return "io.cost"
    return "none"


def _fault_kind(scenario: Scenario) -> str:
    """The fault plan's class (one of :data:`FAULT_KINDS`)."""
    if scenario.faults is None:
        return "none"
    label = scenario.faults.label
    return label if label in FAULT_KINDS else "other"


def _weight_stats(weights: dict[str, int]) -> tuple[float, dict[str, float]]:
    """Global log10(max/min) ratio plus per-group log10 relative weight."""
    if not weights:
        return 0.0, {}
    values = [max(1, int(w)) for w in weights.values()]
    ratio = math.log10(max(values) / min(values))
    geo_mean = math.exp(_mean([math.log(v) for v in values]))
    relative = {
        path: math.log10(max(1, int(weight)) / geo_mean)
        for path, weight in weights.items()
    }
    return ratio, relative


def _knob_setting_cells(
    scenario: Scenario, refs: _DeviceRefs
) -> tuple[dict[str, float], dict[str, dict[str, float]]]:
    """Global knob-setting cells plus per-group knob coupling cells.

    All settings written by :mod:`repro.tune.space` builders are in
    *scaled-device* units (caps divided by ``device_scale``, latency
    targets multiplied by it); this undoes the dilation before
    normalizing against the full-speed saturation references.
    """
    cells = {
        "iomax_bps_frac_min": 1.0,
        "iomax_iops_frac_min": 1.0,
        "iolat_target_norm_min": 0.0,
        "weight_log_ratio": 0.0,
        "iocost_vrate_frac": 1.0,
        "iocost_rlat_norm": 0.0,
        "mq_rt_frac": 0.0,
        "mq_idle_frac": 0.0,
    }
    per_group: dict[str, dict[str, float]] = {}
    knob = scenario.knob

    if isinstance(knob, IoMaxKnob):
        bps_fracs, iops_fracs = [], []
        for path, limits in knob.limits.items():
            bps = [
                limits[key] * refs.scale / ref
                for key, ref in (("rbps", refs.read_bps), ("wbps", refs.write_bps))
                if key in limits and math.isfinite(limits[key])
            ]
            iops = [
                limits[key] * refs.scale / refs.read_iops
                for key in ("riops", "wiops")
                if key in limits and math.isfinite(limits[key])
            ]
            group = per_group.setdefault(path, {})
            group["g_iomax_bps_frac"] = min(bps) if bps else 1.0
            group["g_iomax_iops_frac"] = min(iops) if iops else 1.0
            bps_fracs.extend(bps)
            iops_fracs.extend(iops)
        if bps_fracs:
            cells["iomax_bps_frac_min"] = min(bps_fracs)
        if iops_fracs:
            cells["iomax_iops_frac_min"] = min(iops_fracs)
    elif isinstance(knob, DynamicIoMaxKnob):
        ratio, relative = _weight_stats(knob.weights)
        cells["weight_log_ratio"] = ratio
        for path, rel in relative.items():
            per_group.setdefault(path, {})["g_weight_log_rel"] = rel
    elif isinstance(knob, BfqKnob):
        ratio, relative = _weight_stats(knob.weights)
        cells["weight_log_ratio"] = ratio
        for path, rel in relative.items():
            per_group.setdefault(path, {})["g_weight_log_rel"] = rel
    elif isinstance(knob, IoLatencyKnob):
        norms = []
        for path, target in knob.targets_us.items():
            norm = (target / refs.scale) / refs.read_fixed_us
            per_group.setdefault(path, {})["g_iolat_target_norm"] = norm
            norms.append(norm)
        if norms:
            cells["iolat_target_norm_min"] = min(norms)
    elif isinstance(knob, IoCostKnob):
        ratio, relative = _weight_stats(knob.weights)
        cells["weight_log_ratio"] = ratio
        for path, rel in relative.items():
            per_group.setdefault(path, {})["g_weight_log_rel"] = rel
        qos = knob.qos
        if qos.enable:
            cells["iocost_vrate_frac"] = (
                (qos.vrate_min_pct + qos.vrate_max_pct) / 2.0 / 100.0
            )
            if qos.rlat_us > 0:
                cells["iocost_rlat_norm"] = (
                    (qos.rlat_us / refs.scale) / refs.read_fixed_us
                )
    elif isinstance(knob, MqDeadlineKnob):
        classes = list(knob.classes.values())
        if classes:
            cells["mq_rt_frac"] = classes.count("realtime") / len(classes)
            cells["mq_idle_frac"] = classes.count("idle") / len(classes)
        for path, class_name in knob.classes.items():
            per_group.setdefault(path, {})["g_mq_class"] = _MQ_CLASS_ORDINAL.get(
                class_name, 0.0
            )

    return cells, per_group


def featurize(scenario: Scenario, cgroup: str) -> list[float]:
    """The feature row for one ``(scenario, cgroup)`` pair.

    Total over valid scenarios; every cell finite; stable under any
    reordering of ``scenario.apps``. ``cgroup`` selects which group the
    per-group block describes (its competitors are aggregated into the
    ``o_*`` cells).
    """
    refs = _DeviceRefs(scenario)
    specs = list(scenario.apps)
    group_specs = [spec for spec in specs if spec.cgroup_path == cgroup]
    other_specs = [spec for spec in specs if spec.cgroup_path != cgroup]
    duration_us = scenario.duration_us

    def qd(spec) -> float:
        """Closed-loop demand: queue depth (0 for open-loop jobs)."""
        if spec.arrival_rate_iops is not None or spec.arrival_phases:
            return 0.0
        return float(spec.queue_depth)

    def arrival_frac(spec) -> float:
        """Open-loop demand as a fraction of full-speed read saturation."""
        return _mean_arrival_iops(spec) * refs.scale / refs.read_iops

    def rate_limit_frac(spec) -> float:
        """Self-imposed bandwidth cap as a fraction of read saturation."""
        if spec.rate_limit_bps is None or not math.isfinite(spec.rate_limit_bps):
            return 1.0
        return min(1.0, spec.rate_limit_bps * refs.scale / refs.read_bps)

    total_qd = sum(qd(spec) for spec in specs)
    group_qd = sum(qd(spec) for spec in group_specs)

    cells: dict[str, float] = {
        "n_groups": float(len({spec.cgroup_path for spec in specs})),
        "n_apps": float(len(specs)),
        "duration_s": scenario.duration_s,
        "warmup_frac": scenario.warmup_s / scenario.duration_s,
        "cores": float(scenario.cores),
        "num_devices": float(scenario.num_devices),
        "log2_device_scale": math.log2(max(1e-9, scenario.device_scale)),
        "total_qd": total_qd,
        "total_arrival_frac": sum(arrival_frac(spec) for spec in specs),
        "total_rate_limit_frac": sum(rate_limit_frac(spec) for spec in specs),
        "mean_log2_size": _mean([_log2_size(spec.size) for spec in specs]),
        "max_log2_size": max(_log2_size(spec.size) for spec in specs),
        "write_frac": _mean([1.0 - spec.read_fraction for spec in specs]),
        "seq_frac": _mean(
            [1.0 if spec.pattern is Pattern.SEQUENTIAL else 0.0 for spec in specs]
        ),
        "buffered_frac": _mean([0.0 if spec.direct else 1.0 for spec in specs]),
        "active_frac": _mean(
            [_active_fraction(spec, duration_us) for spec in specs]
        ),
        "has_ctl": 1.0 if scenario.ctl is not None else 0.0,
    }

    knob_kind = _knob_kind(scenario)
    for kind in KNOB_KINDS:
        cells[f"knob_is_{kind}"] = 1.0 if kind == knob_kind else 0.0

    setting_cells, per_group_settings = _knob_setting_cells(scenario, refs)
    cells.update(setting_cells)

    fault_kind = _fault_kind(scenario)
    for kind in FAULT_KINDS:
        cells[f"fault_is_{kind}"] = 1.0 if kind == fault_kind else 0.0

    group_defaults = {
        "g_iomax_bps_frac": 1.0,
        "g_iomax_iops_frac": 1.0,
        "g_iolat_target_norm": 0.0,
        "g_weight_log_rel": 0.0,
        "g_mq_class": 0.0,
    }
    group_knob = dict(group_defaults)
    group_knob.update(per_group_settings.get(cgroup, {}))

    cells.update(
        {
            "g_n_apps": float(len(group_specs)),
            "g_qd_sum": group_qd,
            "g_qd_share": group_qd / total_qd if total_qd > 0 else 0.0,
            "g_arrival_frac": sum(arrival_frac(spec) for spec in group_specs),
            "g_rate_limit_frac": sum(rate_limit_frac(spec) for spec in group_specs),
            "g_mean_log2_size": _mean([_log2_size(s.size) for s in group_specs]),
            "g_max_log2_size": max(
                [_log2_size(s.size) for s in group_specs], default=0.0
            ),
            "g_write_frac": _mean([1.0 - s.read_fraction for s in group_specs]),
            "g_seq_frac": _mean(
                [1.0 if s.pattern is Pattern.SEQUENTIAL else 0.0 for s in group_specs]
            ),
            "g_active_frac": _mean(
                [_active_fraction(s, duration_us) for s in group_specs]
            ),
            "g_is_lc": 1.0
            if group_specs
            and all(
                s.arrival_rate_iops is None
                and not s.arrival_phases
                and s.queue_depth == 1
                for s in group_specs
            )
            else 0.0,
            "o_qd_sum": total_qd - group_qd,
            "o_arrival_frac": sum(arrival_frac(spec) for spec in other_specs),
            "o_write_frac": _mean([1.0 - s.read_fraction for s in other_specs]),
            "o_max_log2_size": max(
                [_log2_size(s.size) for s in other_specs], default=0.0
            ),
        }
    )
    cells.update(group_knob)

    return [_finite(cells[name]) for name in feature_names()]


def featurize_scenario(scenario: Scenario) -> dict[str, list[float]]:
    """Feature rows for every cgroup in the scenario, sorted by path."""
    return {cgroup: featurize(scenario, cgroup) for cgroup in scenario_cgroups(scenario)}


def utilization_reference_mib_s(scenario: Scenario) -> float:
    """The util target's denominator: 4 KiB random-read saturation.

    Identical to :func:`repro.tune.slo.default_utilization_reference_mib_s`
    but keyed off the scenario so corpus building needs no extra inputs.
    """
    doc = describe_model_dict(scenario.ssd_model)
    return doc["cases"]["rand-read-4k"]["bandwidth_bps"] / (1024.0 * 1024.0)


def targets_from_summary(
    summary: ScenarioSummary, cgroup: str, reference_mib_s: float | None = None
) -> tuple[float, float, float]:
    """One group's ``(p99_us, bandwidth_mib_s, util)`` training targets.

    Full-device-speed units throughout (the :mod:`repro.tune.slo`
    convention): p99 divides by the summary's ``device_scale``,
    bandwidth multiplies by it, and utilization is the group's
    full-speed bandwidth over ``reference_mib_s`` (0.0 when no
    reference is given). A starved group (no completions in the
    measurement window) trains at the :data:`TARGET_P99_CAP_US`
    ceiling, which also clamps any measured p99.
    """
    scale = summary.device_scale
    stats = summary.cgroup_stats().get(cgroup)
    if stats is None:
        p99, bandwidth = TARGET_P99_CAP_US, 0.0
    else:
        bandwidth = stats.bandwidth_mib_s * scale
        if stats.latency is None:
            p99 = TARGET_P99_CAP_US
        else:
            p99 = min(TARGET_P99_CAP_US, stats.latency.p99_us / scale)
    util = 0.0
    if reference_mib_s is not None and reference_mib_s > 0:
        util = bandwidth / reference_mib_s
    return p99, bandwidth, util
