"""Property-based tests (hypothesis) for the placement strategies.

Against *any* fleet shape and *any* synthetic interference matrix, every
strategy — including the greedy consolidator with its rebalance and
saturation passes — must produce a placement that (a) never exceeds the
per-device tenant capacity, (b) accounts for every tenant exactly once
(placed or evicted), and (c) is a deterministic function of its inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.interference import InterferenceMatrix, PairEffect, TenantMeasure
from repro.fleet.placement import STRATEGIES, place
from repro.fleet.spec import FleetSpec, TenantSpec

KINDS = ("lc", "batch", "be")
SLOS = ("", "p99<=100", "bw>=500", "p99<=100,bw>=500")


@st.composite
def fleets(draw):
    """Small random fleets: 1-3 hosts x 1-3 devices, 1-8 tenants."""
    n_tenants = draw(st.integers(1, 8))
    tenants = tuple(
        TenantSpec(
            f"t{i}",
            kind=draw(st.sampled_from(KINDS)),
            slo=draw(st.sampled_from(SLOS)),
        )
        for i in range(n_tenants)
    )
    return FleetSpec(
        name="prop",
        hosts=draw(st.integers(1, 3)),
        devices_per_host=draw(st.integers(1, 3)),
        max_tenants_per_device=draw(st.integers(1, 3)),
        saturation_threshold=draw(
            st.floats(1.0, 25.0, allow_nan=False, allow_infinity=False)
        ),
        tenants=tenants,
    )


@st.composite
def matrices(draw, fleet: FleetSpec) -> InterferenceMatrix:
    """A synthetic matrix with arbitrary (clamped-legal) effects."""
    solo = {
        name: TenantMeasure(
            p99_us=draw(st.floats(10.0, 10_000.0)),
            bandwidth_mib_s=draw(st.floats(1.0, 5_000.0)),
        )
        for name in fleet.tenant_names()
    }
    effects = {}
    for tenant in fleet.tenant_names():
        for partner in fleet.tenant_names():
            if tenant == partner:
                continue
            effects[(tenant, partner)] = PairEffect(
                tenant=tenant,
                partner=partner,
                p99_ratio=draw(st.floats(1.0, 1_000.0)),
                bandwidth_retention=draw(st.floats(0.001, 1.0)),
            )
    return InterferenceMatrix(fleet_name=fleet.name, solo=solo, effects=effects)


@st.composite
def placement_cases(draw):
    fleet = draw(fleets())
    matrix = draw(matrices(fleet))
    strategy = draw(st.sampled_from(STRATEGIES))
    seed = draw(st.integers(0, 2**31))
    return fleet, matrix, strategy, seed


@given(placement_cases())
@settings(max_examples=60, deadline=None)
def test_capacity_never_exceeded_and_everyone_accounted(case):
    fleet, matrix, strategy, seed = case
    placement = place(fleet, matrix, strategy, seed=seed)
    placed = [name for names in placement.assignment.values() for name in names]
    # (a) hard capacity bound on every device, even after rebalancing,
    # migration and eviction.
    for slot, names in placement.assignment.items():
        assert len(names) <= fleet.max_tenants_per_device, (strategy, slot)
    # (b) every tenant exactly once: placed or evicted, never both/lost.
    assert sorted(placed + list(placement.evicted)) == sorted(
        fleet.tenant_names()
    )
    # Slots are exactly the fleet's slots.
    assert set(placement.assignment) == set(fleet.slots())
    # Predicted violation is finite and non-negative.
    assert placement.predicted_violation >= 0.0


@given(placement_cases())
@settings(max_examples=25, deadline=None)
def test_placement_is_deterministic(case):
    fleet, matrix, strategy, seed = case
    first = place(fleet, matrix, strategy, seed=seed)
    second = place(fleet, matrix, strategy, seed=seed)
    assert first.to_json_dict() == second.to_json_dict()
