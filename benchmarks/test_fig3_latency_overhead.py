"""Fig. 3: cgroups latency and CPU overhead, 1-256 LC-apps on one core.

Regenerates: (a-c) latency CDFs at 1/16/256 apps with P99 annotations,
(d) single-core CPU utilization vs app count, and the §V perf profile
rows (context switches and cycles per I/O at 16 apps).

Runs unscaled (latency study); runtimes are kept sane with short
measured windows.
"""

from conftest import run_once

from repro.core.d1_overhead import run_lc_overhead
from repro.core.report import render_table

APP_COUNTS = (1, 2, 4, 8, 16, 64, 256)
CDF_AT = (1, 16, 256)


def test_fig3_lc_overhead(benchmark, figure_output):
    study = run_once(
        benchmark,
        lambda: run_lc_overhead(
            app_counts=APP_COUNTS,
            duration_s=0.35,
            warmup_s=0.1,
            collect_cdf_for=CDF_AT,
            cdf_points=40,
        ),
    )
    rows = [
        [
            p.knob,
            p.n_apps,
            p.p99_us,
            p.p50_us,
            p.cpu_utilization * 100.0,
            p.ctx_switches_per_io,
            p.cycles_per_io / 1000.0,
        ]
        for p in study.points
    ]
    table = render_table(
        ["knob", "apps", "P99 us", "P50 us", "cpu %", "ctx/io", "Kcycles/io"],
        rows,
        title="Fig. 3 -- LC-app scaling on one core (unscaled device)",
    )
    cdf_lines = ["", "CDF data (latency_us:cum_prob):"]
    for (knob, n_apps), (values, probs) in sorted(study.cdfs.items()):
        points = " ".join(f"{v:.0f}:{p:.3f}" for v, p in zip(values, probs))
        cdf_lines.append(f"  [{knob} x{n_apps}] {points}")
    figure_output("fig3_latency_overhead", table + "\n" + "\n".join(cdf_lines))

    # Shape guards: O1.
    assert study.p99("bfq", 1) > study.p99("none", 1)
    assert study.p99("io.cost", 16) > 1.2 * study.p99("none", 16)
    assert study.p99("io.max", 16) < 1.1 * study.p99("none", 16)
    assert study.utilization("bfq", 16) >= 0.99
