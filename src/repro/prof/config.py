"""Profiler configuration.

A scenario opts into self-profiling by setting ``Scenario.prof`` to a
:class:`ProfConfig`; the default (``None``) keeps the subsystem fully
dormant: no profiler object is built and the event loop runs the exact
seed hot path (``tests/unit/test_obs_overhead.py`` guards that path).
Profiling never changes simulation *results* — only how the run is
timed — which the bit-identity tests in ``tests/unit/test_prof.py``
pin down for both serial and multi-worker execution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProfConfig:
    """How to profile a scenario run.

    * ``timeline_bucket_us`` — width (in *simulated* microseconds) of
      the per-phase timeline buckets used by the Chrome-trace exporter;
      ``0`` (the default) records phase totals only, which is what the
      bench harness needs and keeps profiled runs lean.
    """

    timeline_bucket_us: float = 0.0

    def __post_init__(self) -> None:
        if self.timeline_bucket_us < 0:
            raise ValueError("timeline_bucket_us must be >= 0 (0 disables buckets)")

    @property
    def timeline(self) -> bool:
        """Whether per-phase timeline buckets are recorded."""
        return self.timeline_bucket_us > 0
