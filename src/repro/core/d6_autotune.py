"""D6: autotuning — which knob, configured how, for a given SLO?

The other core modules *measure* the five cgroup I/O-control knobs; D6
*configures* them. Against the D5 workload shape (one latency-critical
app plus saturating best-effort readers) and a tenant SLO -- a p99
ceiling and bandwidth floor for the LC tenant plus a device-utilization
floor -- each knob's parameter space is searched with its default
strategy and the knobs are ranked by the tuned SLO-violation score.

The expected outcome mirrors the paper: io.max, io.latency and io.cost
tune into meeting (or nearly meeting) the SLO; MQ-Deadline's class pairs
help latency at a utilization cost; BFQ cannot be tuned out of its
QD=1 latency collapse (O6) no matter the weight.

Everything fans out through the sweep executor, so ``isol-bench tune
--workers N`` parallelizes each search batch and reruns hit the result
cache; ``--faults CLASS`` reruns the whole search under a fault plan for
robustness-aware recommendations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scenarios import BE_GROUP, PRIORITY_GROUP, robustness_specs
from repro.exec.executor import SweepExecutor
from repro.faults import get_fault_plan
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like
from repro.tune.advisor import AdvisorReport, advise
from repro.tune.evaluator import TuneEvaluator
from repro.tune.slo import GroupSlo, SloSpec, parse_slo
from repro.tune.space import TUNABLE_KNOBS, build_space


@dataclass
class AutotuneSettings:
    """Effort level, workload shape and search scope for D6."""

    ssd: SsdModel = None  # type: ignore[assignment]
    #: Knobs to search; defaults to all five Table-I control knobs.
    knobs: tuple[str, ...] = TUNABLE_KNOBS
    #: Per-knob evaluation budget (the baseline run is on the house).
    budget: int = 12
    #: Search strategy ("auto" defers to each space's default).
    strategy: str = "auto"
    #: Fault class for robustness-aware tuning; None tunes healthy.
    fault_class: str | None = None
    duration_s: float = 2.0
    warmup_s: float = 0.5
    device_scale: float = 8.0
    be_queue_depth: int = 64
    n_be_apps: int = 4
    cores: int = 10
    seed: int = 42
    #: Surrogate prefiltering: ``off`` (pure simulator search), ``auto``
    #: (fit on the result-cache corpus, falling back with a notice when
    #: it is too small), or a path to a saved model JSON.
    surrogate: str = "off"
    #: Candidates forwarded to the simulator per surrogate search;
    #: None means the search ``budget`` (budget-for-budget comparable).
    verify_top_k: int | None = None
    #: Fewest corpus rows ``auto`` will fit on.
    surrogate_min_rows: int = 32
    #: Pool width multiplier (candidates scored per verified run).
    surrogate_pool_factor: int = 64

    def __post_init__(self) -> None:
        if self.ssd is None:
            self.ssd = samsung_980pro_like()
        if not self.knobs:
            raise ValueError("need at least one knob to tune")
        unknown = set(self.knobs) - set(TUNABLE_KNOBS)
        if unknown:
            raise ValueError(f"unknown knobs {sorted(unknown)}; options: {TUNABLE_KNOBS}")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.verify_top_k is not None and self.verify_top_k < 1:
            raise ValueError("verify_top_k must be >= 1 when set")
        if self.surrogate_pool_factor < 1:
            raise ValueError("surrogate_pool_factor must be >= 1")


def quick_settings() -> AutotuneSettings:
    """The ``tune --quick`` effort level."""
    return AutotuneSettings(
        budget=8,
        duration_s=0.8,
        warmup_s=0.2,
        device_scale=8.0,
        be_queue_depth=64,
    )


def mini_settings() -> AutotuneSettings:
    """Tier-1 / CI-smoke effort: seconds of wall time, all five knobs."""
    return AutotuneSettings(
        budget=6,
        duration_s=0.3,
        warmup_s=0.1,
        device_scale=16.0,
        be_queue_depth=32,
        n_be_apps=2,
    )


def default_slo() -> SloSpec:
    """The demo SLO the CLI uses when ``--slo`` is not given.

    Calibrated to the D5 mini workload on the flash preset: the LC
    tenant's untuned p99 (~123 us full-speed) must come under 100 us
    while keeping most of its fair-share bandwidth, and the device must
    stay at least 25% busy -- tight enough that every knob's default
    violates it, loose enough that the throttlers can tune into it.
    """
    return SloSpec(
        groups=(
            GroupSlo(PRIORITY_GROUP, p99_latency_us=100.0, min_bandwidth_mib_s=40.0),
        ),
        utilization_floor=0.25,
    )


def resolve_slo(text: str | None) -> SloSpec:
    """``--slo`` text when given, else the calibrated default."""
    return parse_slo(text) if text else default_slo()


def resolve_surrogate_model(
    settings: AutotuneSettings,
    executor: SweepExecutor | None = None,
):
    """Resolve ``settings.surrogate`` into ``(model, notices)``.

    ``off`` yields no model; a path loads a saved model JSON; ``auto``
    fits on the result-cache corpus of whichever cache the executor
    uses (the default cache directory otherwise). A missing or
    too-small corpus is not fatal: ``auto`` falls back to the pure
    simulator search and says so in an operator-facing notice.
    """
    if settings.surrogate == "off":
        return None, []
    from repro.surrogate import fit_from_corpus, load_corpus
    from repro.surrogate.model import SurrogateModel

    if settings.surrogate != "auto":
        return SurrogateModel.load(settings.surrogate), []
    cache = executor.cache if executor is not None else None
    corpus = load_corpus(cache.root if cache is not None else None)
    min_rows = max(1, settings.surrogate_min_rows)
    if corpus.n_rows < min_rows:
        return None, [
            "surrogate=auto: corpus has "
            f"{corpus.n_rows} rows (< {min_rows} required); "
            "falling back to pure simulator search"
        ]
    return fit_from_corpus(corpus, seed=settings.seed), []


def evaluate_autotune(
    settings: AutotuneSettings | None = None,
    slo: SloSpec | None = None,
    executor: SweepExecutor | None = None,
) -> AdvisorReport:
    """Search every requested knob against the SLO and rank them."""
    settings = settings or AutotuneSettings()
    slo = slo or default_slo()
    apps = robustness_specs(
        be_queue_depth=settings.be_queue_depth, n_be_apps=settings.n_be_apps
    )
    faults = (
        get_fault_plan(settings.fault_class) if settings.fault_class else None
    )
    searches = []
    for knob_name in settings.knobs:
        space = build_space(
            knob_name,
            settings.ssd,
            device_scale=settings.device_scale,
            priority_group=PRIORITY_GROUP,
            be_group=BE_GROUP,
        )
        evaluator = TuneEvaluator(
            space=space,
            slo=slo,
            apps=apps,
            ssd=settings.ssd,
            device_scale=settings.device_scale,
            duration_s=settings.duration_s,
            warmup_s=settings.warmup_s,
            seed=settings.seed,
            cores=settings.cores,
            faults=faults,
            executor=executor,
        )
        searches.append((space, evaluator))
    model, notices = resolve_surrogate_model(settings, executor)
    prefilters = None
    budget = settings.budget
    if model is not None:
        from repro.surrogate import SurrogatePrefilter

        prefilters = {
            space.name: SurrogatePrefilter(
                model=model,
                slo=slo,
                ssd=settings.ssd,
                pool_factor=settings.surrogate_pool_factor,
            )
            for space, _ in searches
        }
        if settings.verify_top_k is not None:
            budget = settings.verify_top_k
    return advise(
        searches,
        slo,
        budget=budget,
        strategy=settings.strategy,
        seed=settings.seed,
        prefilters=prefilters,
        notices=notices,
    )
