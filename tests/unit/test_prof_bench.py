"""Unit tests for the pinned bench suite and trajectory comparison."""

import copy
import json
from pathlib import Path

import pytest

from repro.prof import bench
from repro.tools.cli import main

TRAJECTORY_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "trajectory"


def synthetic_record(norms: dict[str, float]) -> dict:
    """A minimal-but-valid bench record with given normalized medians."""
    return {
        "schema_version": bench.BENCH_SCHEMA_VERSION,
        "label": None,
        "mini": True,
        "repeats": 1,
        "workers": 1,
        "calibration_events": 1_000,
        "cases": {
            name: {
                "kind": "profiled",
                "events": 100,
                "rates": [value],
                "median_rate": value,
                "calibration_rates": [1.0],
                "normalized_rates": [value],
                "median_normalized": value,
            }
            for name, value in norms.items()
        },
    }


class TestCalibration:
    def test_calibration_fires_requested_events(self):
        # In-flight chain events may overshoot by at most chains - 1.
        events, elapsed = bench.run_calibration(n_events=2_000, chains=4)
        assert 2_000 <= events <= 2_003
        assert elapsed > 0


class TestTrajectoryFiles:
    def test_numbering_starts_at_one(self, tmp_path):
        assert bench.next_bench_path(tmp_path).name == "BENCH_0001.json"
        assert bench.latest_bench_path(tmp_path) is None

    def test_numbering_continues_past_gaps(self, tmp_path):
        for n in (1, 3):
            (tmp_path / f"BENCH_{n:04d}.json").write_text("{}")
        (tmp_path / "BENCH_notanumber.json").write_text("{}")
        assert bench.next_bench_path(tmp_path).name == "BENCH_0004.json"
        assert bench.latest_bench_path(tmp_path).name == "BENCH_0003.json"

    def test_write_load_roundtrip(self, tmp_path):
        record = synthetic_record({"d1-overhead": 0.5})
        path = bench.write_bench(record, tmp_path)
        assert path.name == "BENCH_0001.json"
        assert bench.load_bench(path) == record
        assert bench.write_bench(record, tmp_path).name == "BENCH_0002.json"

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_0001.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError, match="schema"):
            bench.load_bench(path)


class TestCompare:
    def test_identical_records_pass(self):
        record = synthetic_record({"a": 0.5, "b": 0.7})
        report = bench.compare_benches(record, copy.deepcopy(record))
        assert report.ok
        assert not report.regressions
        assert "PASS" in report.render()

    def test_two_x_slowdown_is_flagged(self):
        baseline = synthetic_record({"a": 0.5, "b": 0.7})
        current = synthetic_record({"a": 0.25, "b": 0.7})  # a got 2x slower
        report = bench.compare_benches(baseline, current, threshold=1.3)
        assert not report.ok
        assert [row.name for row in report.regressions] == ["a"]
        assert report.regressions[0].slowdown == pytest.approx(2.0)
        text = report.render()
        assert "REGRESSED" in text
        assert "FAIL" in text

    def test_speedup_is_not_a_regression(self):
        baseline = synthetic_record({"a": 0.5})
        current = synthetic_record({"a": 5.0})
        assert bench.compare_benches(baseline, current).ok

    def test_missing_case_fails(self):
        baseline = synthetic_record({"a": 0.5, "gone": 0.5})
        current = synthetic_record({"a": 0.5})
        report = bench.compare_benches(baseline, current)
        assert not report.ok
        assert report.missing == ["gone"]
        assert "MISSING" in report.render()

    def test_new_case_is_ignored(self):
        baseline = synthetic_record({"a": 0.5})
        current = synthetic_record({"a": 0.5, "new": 0.1})
        assert bench.compare_benches(baseline, current).ok

    def test_zero_current_rate_is_infinite_slowdown(self):
        baseline = synthetic_record({"a": 0.5})
        current = synthetic_record({"a": 0.0})
        report = bench.compare_benches(baseline, current)
        assert report.rows[0].slowdown == float("inf")
        assert not report.ok

    def test_threshold_validation(self):
        record = synthetic_record({"a": 0.5})
        with pytest.raises(ValueError, match="threshold"):
            bench.compare_benches(record, record, threshold=1.0)

    def test_raw_rates_surface_in_rows_and_render(self):
        baseline = synthetic_record({"a": 0.5})
        current = synthetic_record({"a": 0.5})
        baseline["cases"]["a"]["median_rate"] = 100_000.0
        current["cases"]["a"]["median_rate"] = 150_000.0
        report = bench.compare_benches(baseline, current)
        row = report.rows[0]
        assert row.raw_speedup == pytest.approx(1.5)
        assert row.speedup == pytest.approx(1.0)
        assert "1.50x" in report.render()


class TestCommittedTrajectory:
    """The committed BENCH_0001 -> BENCH_0002 pair records the engine
    rewrite's measured improvement; compare must report it (and still
    flag a synthetic regression against the new record)."""

    def records(self) -> tuple[dict, dict]:
        base = bench.load_bench(TRAJECTORY_DIR / "BENCH_0001.json")
        cur = bench.load_bench(TRAJECTORY_DIR / "BENCH_0002.json")
        return base, cur

    def test_bench_0002_is_full_record_matching_baseline_shape(self):
        base, cur = self.records()
        assert cur["mini"] is False and base["mini"] is False
        assert cur["repeats"] == base["repeats"] == 3
        assert cur["workers"] == base["workers"] == 2
        assert set(cur["cases"]) == set(base["cases"])

    def test_compare_reports_improvement(self):
        base, cur = self.records()
        report = bench.compare_benches(base, cur)
        assert report.ok, report.render()
        # Every pinned case got faster in raw events/sec; the profiled
        # cases (engine hot loop) by a healthy margin.
        for row in report.rows:
            assert row.raw_speedup > 1.0, row
        profiled = {r.name: r for r in report.rows if r.name != "exec-batch"}
        assert all(r.raw_speedup > 1.2 for r in profiled.values()), profiled
        assert "PASS" in report.render()

    def test_synthetic_regression_vs_bench_0002_is_flagged(self):
        _, cur = self.records()
        slowed = copy.deepcopy(cur)
        for entry in slowed["cases"].values():
            entry["median_normalized"] = entry["median_normalized"] / 2.0
            entry["median_rate"] = entry["median_rate"] / 2.0
        report = bench.compare_benches(cur, slowed)
        assert not report.ok
        assert len(report.regressions) == len(cur["cases"])
        assert "REGRESSED" in report.render() and "FAIL" in report.render()


class TestRunBench:
    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError, match="unknown bench case"):
            bench.run_bench(cases=("no-such-case",))

    def test_repeats_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            bench.run_bench(repeats=0)

    def test_exec_case_schema(self):
        record = bench.run_bench(mini=True, cases=("exec-batch",), workers=1)
        assert record["schema_version"] == bench.BENCH_SCHEMA_VERSION
        assert record["repeats"] == 1
        entry = record["cases"]["exec-batch"]
        assert entry["kind"] == "executor"
        assert entry["events"] > 0
        assert entry["median_normalized"] > 0
        stats = entry["executor"]
        # Two sweeps over 3 distinct x 2 submissions: cold executes and
        # dedupes, warm is pure cache hits.
        assert stats["sweeps"] == 2
        assert stats["executed"] == 3
        assert stats["deduped"] == 3
        assert stats["cached"] == 6
        assert 0 < stats["utilization"] <= 1
        assert stats["busy_seconds"] > 0
        assert stats["worker_busy"]
        assert entry["cache"] == {"hits": 6, "misses": 6, "stores": 3}
        # The record must be committable as-is.
        json.dumps(record)

    def test_profiled_case_breakdown_covers_wall(self):
        record = bench.run_bench(mini=True, cases=("d5-faulted",))
        entry = record["cases"]["d5-faulted"]
        assert entry["kind"] == "profiled"
        assert entry["coverage"] >= 0.9
        assert sum(entry["phase_wall"].values()) == pytest.approx(
            entry["coverage"] * entry["loop_wall_seconds"]
        )
        # The faulted cell must actually exercise the fault machinery.
        assert entry["phase_wall"].get("faults", 0.0) > 0


class TestBenchCli:
    def test_compare_identical_candidate_passes(self, tmp_path, capsys):
        record = synthetic_record({"a": 0.5})
        bench.write_bench(record, tmp_path)
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(record))
        code = main(
            [
                "bench",
                "--dir",
                str(tmp_path),
                "--candidate",
                str(candidate),
                "--compare",
                "--no-write",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert out.strip().splitlines()[-1].startswith("perf: events=")

    def test_compare_flags_synthetic_slowdown(self, tmp_path, capsys):
        bench.write_bench(synthetic_record({"a": 0.5}), tmp_path)
        slowed = synthetic_record({"a": 0.25})
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(slowed))
        code = main(
            [
                "bench",
                "--dir",
                str(tmp_path),
                "--candidate",
                str(candidate),
                "--compare",
                "--no-write",
            ]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_without_baseline_errors(self, tmp_path):
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(synthetic_record({"a": 0.5})))
        with pytest.raises(SystemExit, match="no baseline"):
            main(
                [
                    "bench",
                    "--dir",
                    str(tmp_path / "empty"),
                    "--candidate",
                    str(candidate),
                    "--compare",
                ]
            )

    def test_bench_writes_record(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--mini",
                "--cases",
                "exec-batch",
                "--workers",
                "1",
                "--dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "BENCH_0001.json").is_file()
        assert "case exec-batch" in out
        assert "util=" in out
