"""Garbage-collection / write-amplification model.

Flash SSDs cannot overwrite in place: sustained random writes force the
FTL to relocate live data, multiplying internal write traffic by the
write-amplification factor (WAF). We model steady-state GC as *inline
amplification*: once the device is preconditioned, every host write
charges ``WAF x`` its nominal flash and bus cost. This reproduces the two
effects the paper relies on:

* sustained random-write bandwidth collapses to ``nominal / WAF``;
* reads queued behind amplified writes suffer interference, collapsing
  aggregate mixed read/write bandwidth (Fig. 6b).

An optional *pause injector* additionally blocks a fraction of flash
units periodically, modelling foreground GC stalls (tail-latency spikes);
it is off by default so scenario results stay smooth and deterministic.
"""

from __future__ import annotations

from repro.ssd.model import SsdModel


class GcState:
    """Tracks preconditioning and computes the current amplification.

    A fresh drive has spare erased blocks and no amplification; once the
    host has written ``precondition_bytes`` (or the scenario preconditions
    the drive explicitly, as the paper does before write experiments) the
    device reaches steady state and every write is amplified.
    """

    def __init__(
        self,
        model: SsdModel,
        preconditioned: bool = False,
        precondition_bytes: int = 4 * 1024 * 1024 * 1024,
    ):
        self.model = model
        self.enabled = model.gc_enabled
        self.preconditioned = preconditioned or not self.enabled
        self.precondition_bytes = precondition_bytes
        self.host_bytes_written = 0
        self.amplified_bytes = 0
        # Forced-GC storm state (repro.faults.GcStorm windows): extra
        # write amplification multiplied on top of the steady-state WAF
        # while at least one storm window is open.
        self._storm_mult = 1.0

    def precondition(self) -> None:
        """Force steady state (sequential fill + random overwrite, §III)."""
        self.preconditioned = True

    def on_write(self, size: int) -> None:
        """Account a host write; may flip the device into steady state."""
        self.host_bytes_written += size
        if self.write_amplification > 1.0:
            self.amplified_bytes += int(size * (self.write_amplification - 1.0))
        if not self.preconditioned and self.host_bytes_written >= self.precondition_bytes:
            self.preconditioned = True

    @property
    def write_amplification(self) -> float:
        """Current effective WAF (1.0 before steady state or for Optane).

        An open forced-GC storm window multiplies its ``extra_waf`` on
        top — even on a fresh or GC-less device, because a storm models
        the FTL relocating data *now*, not steady-state debt.
        """
        if not self.enabled or not self.preconditioned:
            return self._storm_mult
        return self.model.gc.write_amplification * self._storm_mult

    def begin_storm(self, extra_waf: float) -> None:
        """Open a forced-GC window (storms stack multiplicatively)."""
        self._storm_mult *= extra_waf

    def end_storm(self, extra_waf: float) -> None:
        """Close a forced-GC window opened with the same ``extra_waf``."""
        self._storm_mult /= extra_waf
        if abs(self._storm_mult - 1.0) < 1e-12:
            self._storm_mult = 1.0

    def amplify(self, cost_us: float) -> float:
        """Scale a write's service cost by the current amplification."""
        return cost_us * self.write_amplification


class GcPauseInjector:
    """Optional periodic GC stalls.

    Every ``interval_us`` of amplified-write activity, occupies
    ``units`` flash units for ``pause_us``, creating the latency spikes
    real drives exhibit under sustained writes. Used by failure-injection
    tests and the GC ablation bench.
    """

    def __init__(self, sim, flash_server, interval_us: float, pause_us: float, units: int):
        if interval_us <= 0 or pause_us <= 0 or units < 1:
            raise ValueError("GC pause parameters must be positive")
        self.sim = sim
        self.flash = flash_server
        self.interval_us = interval_us
        self.pause_us = pause_us
        self.units = min(units, flash_server.capacity)
        self._running = False

    def start(self) -> None:
        """Begin injecting pauses (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.interval_us, self._inject)

    def stop(self) -> None:
        """Stop after the current cycle."""
        self._running = False

    def _inject(self) -> None:
        if not self._running:
            return
        for _ in range(self.units):
            self.flash.submit(self.pause_us, _noop)
        self.sim.schedule(self.interval_us, self._inject)


def _noop() -> None:
    return None
