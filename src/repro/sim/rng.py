"""Deterministic named random streams.

Every stochastic component of the simulation (per-app arrival jitter,
device service-time noise, offset generation) pulls from its own named
stream so that adding a component never perturbs the random sequence seen
by the others. This is what makes scenario results reproducible and
shape-stable across refactors.
"""

from __future__ import annotations

import random
import zlib


class RngStreams:
    """A factory of independent :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed is derived from the
    global seed and a stable hash of the name (``zlib.crc32`` -- Python's
    builtin ``hash`` is salted per process and therefore unusable here).
    """

    def __init__(self, seed: int = 42):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng
