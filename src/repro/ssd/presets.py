"""Device presets approximating the paper's two SSDs.

The parameters are calibrated so the *nominal saturation points* line up
with what the paper measured through its QEMU/NVMe-passthrough setup
(§III, §V):

* flash preset: ~2.9 GiB/s 4 KiB random-read saturation (Fig. 4's "none"
  peak on one SSD), ~3 GiB/s large-request read bandwidth, ~75 us QD1
  4 KiB read latency, strong read/write asymmetry and WAF 2.5 under GC;
* Optane preset: ~10 us access latency, symmetric reads/writes, no GC --
  the different performance model the paper uses to confirm
  generalizability.
"""

from __future__ import annotations

from repro.ssd.model import GcParams, SsdModel


def samsung_980pro_like() -> SsdModel:
    """Flash NVMe SSD in the spirit of the paper's Samsung 980 PRO."""
    return SsdModel(
        name="flash-980pro-like",
        parallelism=56,
        read_fixed_us=70.0,
        write_fixed_us=180.0,
        seq_read_fixed_us=58.0,
        seq_write_fixed_us=150.0,
        read_bus_bps=3.1 * 1024**3,
        write_bus_bps=1.9 * 1024**3,
        nvme_max_qd=1024,
        gc=GcParams(write_amplification=2.5),
        gc_enabled=True,
    )


def intel_optane_like() -> SsdModel:
    """3D-XPoint SSD in the spirit of the paper's Intel Optane 900P.

    Optane media reads and writes in place: latencies are an order of
    magnitude lower, read/write costs are nearly symmetric, and there is
    no garbage collection. The paper repeats its experiments on this model
    to show conclusions are not flash-specific.
    """
    return SsdModel(
        name="optane-900p-like",
        parallelism=7,
        read_fixed_us=10.0,
        write_fixed_us=11.0,
        seq_read_fixed_us=9.0,
        seq_write_fixed_us=10.0,
        read_bus_bps=2.5 * 1024**3,
        write_bus_bps=2.2 * 1024**3,
        nvme_max_qd=1024,
        noise_base=0.95,
        noise_tail_mean=0.05,
        gc_enabled=False,
    )


PRESETS = {
    "flash": samsung_980pro_like,
    "optane": intel_optane_like,
}


def get_preset(name: str) -> SsdModel:
    """Look up a preset by name (``flash`` or ``optane``)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown SSD preset {name!r}; options: {sorted(PRESETS)}") from None
    return factory()
