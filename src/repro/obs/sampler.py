"""Sim-clock-driven periodic sampling (``io.stat`` / ``io.pressure`` style).

Linux exposes controller internals as periodically-readable files:
``io.stat`` (cumulative per-cgroup byte/IO counters), ``io.pressure``
(stall shares) and per-controller debug state. The sampler reproduces
that view for the simulation: every ``period_us`` of *simulated* time it
calls a snapshot function composed by the host — engine pending events,
per-controller ``pending()`` and internals (iocost vrate/vtime debt,
iolatency queue-depth limits), scheduler queue depths, device in-flight /
utilization / GC state, and cumulative per-cgroup I/O counters — and
appends one flat row to its time series.

Rows are plain ``dict[str, float|int]`` keyed by dotted metric names so
exporters can serialize them without a schema; the set of keys may grow
over the run (cgroups appear in the active set when they first do I/O).

Rows can also be *streamed*: :meth:`StackSampler.subscribe` registers a
callback invoked with each fresh row as it is recorded, which is how the
:mod:`repro.ctl` control plane observes the stack without waiting for
the run to finish. A sampler built with ``retain=False`` feeds its
subscribers but keeps no history -- the control-plane configuration,
where the time series itself is not an artifact of the run.
"""

from __future__ import annotations

from typing import Callable, Mapping

SnapshotFn = Callable[[], Mapping[str, float]]
SubscriberFn = Callable[[dict], None]


class StackSampler:
    """Polls a snapshot function at a fixed simulated period."""

    def __init__(self, sim, period_us: float, snapshot: SnapshotFn, retain: bool = True):
        if period_us <= 0:
            raise ValueError("sampler period must be positive")
        self.sim = sim
        self.period_us = period_us
        self.snapshot = snapshot
        self.retain = retain
        self.samples: list[dict] = []
        self._subscribers: list[SubscriberFn] = []
        self._running = False

    def subscribe(self, fn: SubscriberFn) -> None:
        """Stream every future row to ``fn`` (called after it is recorded).

        Subscribers run inside the sampler's tick event, in subscription
        order, on the simulated clock -- a subscriber that reconfigures
        the stack (the control plane) therefore acts deterministically
        between two sampling periods.
        """
        self._subscribers.append(fn)

    def start(self) -> None:
        """Begin sampling (idempotent). First sample after one period."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.period_us, self._tick)

    def stop(self) -> None:
        """Stop sampling; the next scheduled tick becomes a no-op."""
        self._running = False

    def _tick(self) -> None:
        """Record one snapshot row and re-arm for the next period."""
        if not self._running:
            return
        row = {"t_us": self.sim.now}
        row.update(self.snapshot())
        if self.retain:
            self.samples.append(row)
        for fn in self._subscribers:
            fn(row)
        self.sim.schedule(self.period_us, self._tick)

    def keys(self) -> list[str]:
        """Union of metric names across all samples, ``t_us`` first."""
        seen: dict[str, None] = {"t_us": None}
        for row in self.samples:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def series(self, key: str, default: float = 0.0) -> tuple[list[float], list[float]]:
        """One metric as ``(times_us, values)`` (missing rows -> default)."""
        times = [row["t_us"] for row in self.samples]
        values = [row.get(key, default) for row in self.samples]
        return times, values
