"""Control-plane primitives: PID, rate limiter, SLO error, controllers.

The primitives carry the subsystem's hard guarantees -- an anti-windup
PID that reacts immediately on error sign flips, a rate limiter whose
asymmetric profile cuts fast but recovers slowly, and an ``slo_error``
normalization every controller keys off. The controller classes are
exercised against a real :class:`CgroupHierarchy` with synthetic
observation windows, so each decision branch (drift / recover /
deadband / min-interval / at-floor / at-ceiling / hold) is pinned here
rather than only implicitly through the D8 goldens.
"""

import math

import pytest

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.cgroups.knobs import IoCostQosParams
from repro.ctl import (
    Actuation,
    ControlObservation,
    CtlConfig,
    IoMaxCtlParams,
    PidParams,
    QdLimitCtlParams,
    VrateCtlParams,
)
from repro.ctl.controllers import (
    PidIoMaxController,
    QdLimitController,
    VrateController,
    slo_error,
)
from repro.ctl.pid import PidState, RateLimiter
from repro.tune.slo import SloScore, SloTerm

DEV = "259:0"


class FakeSim:
    """The minimum a plane-driven controller needs: a clock."""

    def __init__(self):
        self.now = 0.0
        self.scheduled = []

    def schedule(self, delay_us, fn):
        self.scheduled.append((self.now + delay_us, fn))


class FakeThrottle:
    """Records kernel-side re-read pokes instead of throttling."""

    def __init__(self):
        self.invalidations = 0
        self.qos_refreshes = 0
        self.target_refreshes = 0

    def invalidate(self):
        self.invalidations += 1

    def refresh_qos(self):
        self.qos_refreshes += 1

    def refresh_targets(self):
        self.target_refreshes += 1


def p99_obs(measured_us, target_us=300.0, t_us=0.0, extra_terms=()):
    """An observation window with a single latency objective."""
    violation = max(0.0, (measured_us - target_us) / target_us)
    if not math.isfinite(measured_us):
        violation = 1.0
    terms = (
        SloTerm("p99", "/t/prio", target_us, measured_us, violation),
    ) + tuple(extra_terms)
    return ControlObservation(
        t_us=t_us,
        window_us=100_000.0,
        score=SloScore(terms=terms),
        groups={},
        row={},
        device_scale=1.0,
    )


class TestPidState:
    def params(self, **overrides):
        fields = dict(kp=0.5, ki=0.1, kd=0.0)
        fields.update(overrides)
        return PidParams(**fields)

    def test_positive_error_raises_output(self):
        pid = PidState(self.params(), 0.0, 1.0, initial=0.5)
        assert pid.step(0.2) > 0.5

    def test_negative_error_lowers_output(self):
        pid = PidState(self.params(), 0.0, 1.0, initial=0.5)
        assert pid.step(-0.2) < 0.5

    def test_output_clamped_to_bounds(self):
        pid = PidState(self.params(kp=10.0), 0.0, 1.0, initial=0.5)
        assert pid.step(5.0) == 1.0
        assert pid.step(-5.0) == 0.0

    def test_zero_error_holds_initial(self):
        pid = PidState(self.params(), 0.0, 1.0, initial=0.5)
        assert pid.step(0.0) == 0.5

    def test_anti_windup_reacts_immediately_on_sign_flip(self):
        """Conditional integration: after minutes pinned at the ceiling,
        the first negative error must pull the output below the bound --
        no accumulated windup to unwind first."""
        pid = PidState(self.params(kp=1.0, ki=0.5), 0.0, 1.0, initial=0.5)
        for _ in range(100):
            assert pid.step(2.0) == 1.0
        integral_at_saturation = pid.integral
        assert pid.step(-0.4) < 1.0
        # And the integral never grew while saturated.
        windup = PidState(self.params(kp=1.0, ki=0.5), 0.0, 1.0, initial=0.5)
        windup.step(2.0)
        assert integral_at_saturation <= windup.integral + 2.0

    def test_integral_is_bounded(self):
        """ki * |integral| can never exceed the output span."""
        pid = PidState(self.params(kp=0.0, ki=0.1), 0.0, 1.0, initial=0.5)
        for _ in range(10_000):
            pid.step(0.3)
        assert abs(pid.params.ki * pid.integral) <= (pid.out_hi - pid.out_lo) + 1e-9

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_error_contributes_nothing(self, bad):
        pid = PidState(self.params(), 0.0, 1.0, initial=0.5)
        reference = PidState(self.params(), 0.0, 1.0, initial=0.5)
        assert pid.step(bad) == reference.step(0.0)
        assert math.isfinite(pid.output)

    def test_derivative_zero_on_first_step(self):
        with_kd = PidState(self.params(kd=5.0), 0.0, 1.0, initial=0.5)
        without = PidState(self.params(kd=0.0), 0.0, 1.0, initial=0.5)
        assert with_kd.step(0.1) == without.step(0.1)

    def test_reset_forgets_history(self):
        pid = PidState(self.params(), 0.0, 1.0, initial=0.5)
        pid.step(0.4)
        pid.step(-0.2)
        pid.reset()
        assert pid.integral == 0.0
        assert pid.last_error is None
        assert pid.output == 0.5

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            PidState(self.params(), 1.0, 0.0, initial=0.5)
        with pytest.raises(ValueError):
            PidState(self.params(), 0.0, 1.0, initial=2.0)


class TestRateLimiter:
    def test_symmetric_clamp(self):
        limiter = RateLimiter(max_step_fraction=0.5)
        assert limiter.clamp(1.0, 0.2) == 0.5
        assert limiter.clamp(1.0, 2.0) == 1.5
        assert limiter.clamp(1.0, 0.8) == 0.8

    def test_asymmetric_recovery_caps_upward_only(self):
        """Cut fast, creep back slowly: downward steps keep the full
        budget while upward steps are pinned to the recovery fraction."""
        limiter = RateLimiter(max_step_fraction=0.5, max_recover_fraction=0.1)
        assert limiter.clamp(1.0, 0.2) == 0.5  # down: full 50% budget
        assert limiter.clamp(1.0, 2.0) == pytest.approx(1.1)  # up: 10% only

    def test_min_interval_gates_ready(self):
        limiter = RateLimiter(min_interval_us=1000.0)
        assert limiter.ready(0.0)
        limiter.mark(0.0)
        assert not limiter.ready(999.0)
        assert limiter.ready(1000.0)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf, -1.0])
    def test_garbage_proposal_holds_current(self, bad):
        limiter = RateLimiter(max_step_fraction=0.5)
        assert limiter.clamp(1.0, bad) == 1.0

    @pytest.mark.parametrize("bad", [math.nan, math.inf, 0.0, -2.0])
    def test_degenerate_current_passes_proposal(self, bad):
        # A dead setting cannot anchor a relative step; the proposal
        # (already known finite and non-negative) wins outright.
        limiter = RateLimiter(max_step_fraction=0.5)
        assert limiter.clamp(bad, 0.7) == 0.7


class TestSloError:
    def test_headroom_is_positive(self):
        assert slo_error(p99_obs(150.0, target_us=300.0)) == pytest.approx(0.5)

    def test_violation_is_negative(self):
        assert slo_error(p99_obs(450.0, target_us=300.0)) == pytest.approx(-0.5)

    def test_clamped_to_unit_interval(self):
        assert slo_error(p99_obs(3000.0, target_us=300.0)) == -1.0

    def test_starved_group_pins_at_minus_one(self):
        assert slo_error(p99_obs(math.inf)) == -1.0

    def test_worst_term_wins(self):
        extra = SloTerm("p99", "/t/other", 300.0, 60.0, 0.0)
        obs = p99_obs(270.0, target_us=300.0, extra_terms=(extra,))
        assert slo_error(obs) == pytest.approx(0.1)

    def test_non_latency_terms_ignored(self):
        bw = SloTerm("bandwidth", "/t/be", 100.0, 10.0, 0.9)
        obs = ControlObservation(
            t_us=0.0,
            window_us=1.0,
            score=SloScore(terms=(bw,)),
            groups={},
            row={},
            device_scale=1.0,
        )
        assert slo_error(obs) == 0.0


class TestConfigValidation:
    def test_pid_params_reject_negative_gains(self):
        with pytest.raises(ValueError):
            PidParams(kp=-0.1)
        with pytest.raises(ValueError):
            PidParams(violation_boost=0.5)

    def test_iomax_params_reject_inverted_bounds(self):
        with pytest.raises(ValueError):
            IoMaxCtlParams(floor_fraction=0.9, ceiling_fraction=0.5)
        with pytest.raises(ValueError):
            IoMaxCtlParams(max_recover_fraction=0.0)
        with pytest.raises(ValueError):
            IoMaxCtlParams(max_step_fraction=math.nan)

    def test_vrate_params_reject_bad_steps(self):
        with pytest.raises(ValueError):
            VrateCtlParams(down_step=1.2)
        with pytest.raises(ValueError):
            VrateCtlParams(up_step=0.9)

    def test_qdlimit_params_reject_bad_factors(self):
        with pytest.raises(ValueError):
            QdLimitCtlParams(tighten_factor=1.5)
        with pytest.raises(ValueError):
            QdLimitCtlParams(floor_fraction=0.5, ceiling_fraction=0.4)

    def test_ctl_config_rejects_inverted_cadence(self):
        from repro.tune.slo import GroupSlo, SloSpec

        slo = SloSpec(groups=(GroupSlo("/t/prio", p99_latency_us=300.0),))
        with pytest.raises(ValueError):
            CtlConfig(slo=slo, period_us=10.0, sample_period_us=20.0)
        with pytest.raises(ValueError):
            CtlConfig(slo=slo, period_us=0.0)

    def test_ticks_per_step_rounds_to_whole_ticks(self):
        from repro.tune.slo import GroupSlo, SloSpec

        slo = SloSpec(groups=(GroupSlo("/t/prio", p99_latency_us=300.0),))
        cfg = CtlConfig(slo=slo, period_us=100_000.0, sample_period_us=30_000.0)
        assert cfg.ticks_per_step == 3
        assert CtlConfig(slo=slo).ticks_per_step == 5


def make_iomax_controller(**param_overrides):
    sim = FakeSim()
    tree = CgroupHierarchy()
    tree.create("/t/be", processes=True)
    tree.find("/t/be").write("io.max", f"{DEV} rbps=500000000 wbps=500000000")
    throttle = FakeThrottle()
    params = IoMaxCtlParams(**param_overrides)
    controller = PidIoMaxController(
        sim,
        tree,
        [throttle],
        [DEV],
        "/t/be",
        params,
        max_read_bps=1e9,
        initial_fraction=0.5,
        period_us=100_000.0,
    )
    return sim, tree, throttle, controller


class TestPidIoMaxController:
    def test_no_observation_is_a_no_op(self):
        _, _, throttle, controller = make_iomax_controller()
        controller.observe(None)
        assert controller.step() == []
        assert throttle.invalidations == 0

    def test_drift_tightens_and_rewrites_the_knob(self):
        _, tree, throttle, controller = make_iomax_controller()
        controller.observe(p99_obs(900.0))  # 3x over the 300us target
        (actuation,) = controller.step()
        assert actuation.applied and actuation.reason == "drift"
        assert actuation.value < 0.5
        assert controller.fraction == actuation.value
        assert throttle.invalidations == 1
        limits = tree.find("/t/be").read_parsed("io.max", DEV)
        assert limits.rbps == pytest.approx(actuation.value * 1e9, rel=1e-6)

    def test_recovery_is_slower_than_the_cut(self):
        """The asymmetric profile: one violating window may cut the cap
        by up to max_step_fraction; a meeting window claws back at most
        max_recover_fraction of the (now lower) cap."""
        sim, _, _, controller = make_iomax_controller(
            max_step_fraction=0.5, max_recover_fraction=0.1, deadband_fraction=0.0
        )
        controller.observe(p99_obs(3000.0))
        (cut,) = controller.step()
        assert cut.applied and cut.value == pytest.approx(0.25)  # full -50%
        sim.now += 100_000.0
        controller.observe(p99_obs(50.0))  # wide-open headroom
        (recover,) = controller.step()
        assert recover.applied and recover.reason == "recover"
        assert recover.value <= cut.value * 1.1 + 1e-9

    def test_relative_deadband_suppresses_noise(self):
        _, _, throttle, controller = make_iomax_controller(deadband_fraction=0.5)
        controller.observe(p99_obs(295.0))  # ~1.7% headroom: tiny move
        (actuation,) = controller.step()
        assert not actuation.applied and actuation.reason == "deadband"
        assert controller.fraction == 0.5
        assert throttle.invalidations == 0

    def test_min_interval_skips_back_to_back_writes(self):
        sim, _, _, controller = make_iomax_controller(
            min_interval_us=200_000.0, deadband_fraction=0.0
        )
        controller.observe(p99_obs(900.0))
        (first,) = controller.step()
        assert first.applied
        sim.now += 100_000.0  # one period: still inside the interval
        controller.observe(p99_obs(900.0))
        (second,) = controller.step()
        assert not second.applied and second.reason == "min-interval"
        sim.now += 100_000.0
        controller.observe(p99_obs(900.0))
        (third,) = controller.step()
        assert third.applied

    def test_counters_fold_applied_and_skipped(self):
        sim, _, _, controller = make_iomax_controller(deadband_fraction=0.0)
        controller.observe(p99_obs(900.0))
        controller.step()
        sim.now += 100_000.0
        controller.observe(None)
        controller.step()
        row = controller.counters()
        assert row["applied"] == 1.0
        assert row["skipped"] == 0.0
        assert row["final_fraction"] == controller.fraction

    def test_initial_fraction_clamped_into_bounds(self):
        sim = FakeSim()
        tree = CgroupHierarchy()
        tree.create("/t/be", processes=True)
        controller = PidIoMaxController(
            sim,
            tree,
            [],
            [DEV],
            "/t/be",
            IoMaxCtlParams(floor_fraction=0.2, ceiling_fraction=0.8),
            max_read_bps=1e9,
            initial_fraction=0.05,
            period_us=100_000.0,
        )
        assert controller.fraction == 0.2


def make_vrate_controller(**param_overrides):
    sim = FakeSim()
    tree = CgroupHierarchy()
    throttle = FakeThrottle()
    qos = IoCostQosParams(enable=True, vrate_min_pct=25.0, vrate_max_pct=100.0)
    controller = VrateController(
        sim,
        tree,
        [throttle],
        [DEV],
        qos,
        VrateCtlParams(**param_overrides),
        period_us=100_000.0,
    )
    return sim, tree, throttle, controller


class TestVrateController:
    def test_drift_shrinks_the_ceiling(self):
        _, tree, throttle, controller = make_vrate_controller(down_step=0.8)
        controller.observe(p99_obs(900.0))
        (actuation,) = controller.step()
        assert actuation.applied and actuation.reason == "drift"
        assert actuation.value == pytest.approx(80.0)
        assert throttle.qos_refreshes == 1
        qos = tree.root.read_parsed("io.cost.qos", DEV)
        assert qos.vrate_max_pct == pytest.approx(80.0)
        # min never exceeds the shrunken max.
        assert qos.vrate_min_pct <= qos.vrate_max_pct

    def test_floor_stops_the_shrink(self):
        sim, _, _, controller = make_vrate_controller(floor_pct=60.0)
        for i in range(6):
            sim.now = i * 100_000.0
            controller.observe(p99_obs(900.0))
            controller.step()
        assert controller.ceiling_pct == pytest.approx(60.0)
        controller.observe(p99_obs(900.0))
        (parked,) = controller.step()
        assert not parked.applied and parked.reason == "at-floor"

    def test_recovery_stops_at_the_static_ceiling(self):
        sim, _, _, controller = make_vrate_controller(up_step=1.5)
        controller.observe(p99_obs(900.0))
        controller.step()
        assert controller.ceiling_pct < 100.0
        for i in range(1, 8):
            sim.now = i * 100_000.0
            controller.observe(p99_obs(100.0))
            controller.step()
        assert controller.ceiling_pct == pytest.approx(100.0)
        controller.observe(p99_obs(100.0))
        (parked,) = controller.step()
        assert not parked.applied and parked.reason == "at-ceiling"

    def test_bandwidth_only_drift_holds(self):
        """Latency fine but a bandwidth floor violated: shrinking vrate
        would starve throughput harder, so the controller holds."""
        _, _, throttle, controller = make_vrate_controller()
        bw = SloTerm("bandwidth", "/t/be", 100.0, 10.0, 0.9)
        controller.observe(p99_obs(100.0, extra_terms=(bw,)))
        (actuation,) = controller.step()
        assert not actuation.applied and actuation.reason == "hold"
        assert throttle.qos_refreshes == 0


def make_qd_controller(**param_overrides):
    sim = FakeSim()
    tree = CgroupHierarchy()
    tree.create("/t/prio", processes=True)
    tree.find("/t/prio").write("io.latency", f"{DEV} target=1000")
    throttle = FakeThrottle()
    controller = QdLimitController(
        sim,
        tree,
        [throttle],
        [DEV],
        "/t/prio",
        QdLimitCtlParams(**param_overrides),
        initial_target_us=1000.0,
        period_us=100_000.0,
    )
    return sim, tree, throttle, controller


class TestQdLimitController:
    def test_drift_tightens_the_target(self):
        _, tree, throttle, controller = make_qd_controller(tighten_factor=0.7)
        controller.observe(p99_obs(900.0))
        (actuation,) = controller.step()
        assert actuation.applied and actuation.reason == "drift"
        assert actuation.value == pytest.approx(700.0)
        assert throttle.target_refreshes == 1
        parsed = tree.find("/t/prio").read_parsed("io.latency", DEV)
        assert parsed == pytest.approx(700.0)

    def test_floor_and_ceiling_are_relative_to_baseline(self):
        sim, _, _, controller = make_qd_controller(
            floor_fraction=0.5, ceiling_fraction=1.0
        )
        for i in range(6):
            sim.now = i * 100_000.0
            controller.observe(p99_obs(900.0))
            controller.step()
        assert controller.target_us == pytest.approx(500.0)
        sim.now += 100_000.0
        controller.observe(p99_obs(900.0))
        (parked,) = controller.step()
        assert not parked.applied and parked.reason == "at-floor"
        for i in range(8, 16):
            sim.now = i * 100_000.0
            controller.observe(p99_obs(100.0))
            controller.step()
        assert controller.target_us == pytest.approx(1000.0)

    def test_rejects_degenerate_initial_target(self):
        sim = FakeSim()
        tree = CgroupHierarchy()
        tree.create("/t/prio", processes=True)
        with pytest.raises(ValueError):
            QdLimitController(
                sim,
                tree,
                [],
                [DEV],
                "/t/prio",
                QdLimitCtlParams(),
                initial_target_us=0.0,
                period_us=100_000.0,
            )


class TestActuationRecord:
    def test_json_dict_is_self_describing(self):
        actuation = Actuation(
            t_us=1.0,
            controller="pid-iomax",
            knob="io.max",
            cgroup="/t/be",
            previous=0.5,
            value=0.4,
            applied=True,
            reason="drift",
        )
        doc = actuation.to_json_dict()
        assert doc["type"] == "actuation"
        assert doc["reason"] == "drift"
        assert doc["previous"] == 0.5 and doc["value"] == 0.4
