"""io.max: static bandwidth/IOPS throttling (blk-throttle).

Each cgroup with an ``io.max`` entry for the device gets four token
buckets (rbps/wbps/riops/wiops). A request reserves tokens from every
applicable bucket of its group *and all ancestors* (cgroup limits apply
to the whole subtree) and is admitted after the longest computed wait --
exactly how blk-throttle schedules an over-budget bio.

Properties the paper measures: low overhead (O1), precise static caps
with no minimum guarantee (Fig. 2e), weighted fairness only when the
practitioner translates weights to limits (Q4), no work conservation
(O8: unused budget is not redistributed).
"""

from __future__ import annotations

import math

from repro.cgroups.hierarchy import Cgroup, CgroupHierarchy
from repro.cgroups.knobs import IoMaxLimits
from repro.iocontrol.base import ForwardFn, ThrottleLayer
from repro.iorequest import IoRequest, OpType
from repro.sim.engine import Simulator
from repro.sim.resources import TokenBucket

# Token buckets allow this much burst, in microseconds of accrual.
_BURST_WINDOW_US = 10_000.0


class _GroupBuckets:
    """The four token buckets of one (cgroup, device) pair."""

    __slots__ = ("rbps", "wbps", "riops", "wiops")

    def __init__(self, limits: IoMaxLimits, now: float):
        self.rbps = self._bucket(limits.rbps, now)
        self.wbps = self._bucket(limits.wbps, now)
        self.riops = self._bucket(limits.riops, now)
        self.wiops = self._bucket(limits.wiops, now)

    @staticmethod
    def _bucket(limit_per_s: float, now: float) -> TokenBucket | None:
        if math.isinf(limit_per_s):
            return None
        rate_per_us = limit_per_s / 1e6
        return TokenBucket(rate_per_us, burst=rate_per_us * _BURST_WINDOW_US, start_time=now)

    def wait_us(self, req: IoRequest, now: float) -> float:
        if req.op == OpType.READ:
            bps, iops = self.rbps, self.riops
        else:
            bps, iops = self.wbps, self.wiops
        wait = 0.0
        if bps is not None:
            wait = max(wait, bps.reserve(req.size, now))
        if iops is not None:
            wait = max(wait, iops.reserve(1.0, now))
        return wait


class IoMaxController(ThrottleLayer):
    """blk-throttle for one device."""

    name = "io.max"

    def __init__(self, sim: Simulator, hierarchy: CgroupHierarchy, device_id: str):
        self.sim = sim
        self.hierarchy = hierarchy
        self.device_id = device_id
        self._buckets: dict[str, _GroupBuckets | None] = {}
        self._group_cache: dict[str, Cgroup] = {}
        self._throttled_in_flight = 0
        self._generation = 0

    def _group(self, path: str) -> Cgroup:
        group = self._group_cache.get(path)
        if group is None:
            group = self.hierarchy.find(path)
            self._group_cache[path] = group
        return group

    def _buckets_for(self, group: Cgroup) -> "_GroupBuckets | None":
        cached = self._buckets.get(group.path, _MISSING)
        if cached is not _MISSING:
            return cached
        limits = group.read_parsed("io.max", self.device_id)
        buckets = None
        if limits is not None and not limits.is_unlimited():
            buckets = _GroupBuckets(limits, self.sim.now)
        self._buckets[group.path] = buckets
        return buckets

    def invalidate(self) -> None:
        """Drop cached buckets after an io.max reconfiguration.

        Bumps the bucket generation: requests already sitting on the
        throttle queue re-reserve against the *new* limits when their
        old release fires, the way blk-throttle re-evaluates queued bios
        after a config write. Without this, a mid-run cap cut would leak
        -- the backlog would keep draining at the old rate alongside new
        arrivals reserving from a fresh bucket.
        """
        self._buckets.clear()
        self._generation += 1

    def _wait_for(self, req: IoRequest, now: float) -> float:
        """Longest wait across the group's and its ancestors' buckets."""
        wait = 0.0
        node: Cgroup | None = self._group(req.cgroup_path)
        while node is not None:
            buckets = self._buckets_for(node)
            if buckets is not None:
                wait = max(wait, buckets.wait_us(req, now))
            node = node.parent
        return wait

    def submit(self, req: IoRequest, forward: ForwardFn) -> None:
        wait = self._wait_for(req, self.sim.now)
        if wait <= 0:
            forward(req)
        else:
            self._throttled_in_flight += 1
            generation = self._generation
            self.sim.schedule(wait, lambda: self._release(req, forward, generation))

    def _release(self, req: IoRequest, forward: ForwardFn, generation: int) -> None:
        if generation != self._generation:
            # The limits changed while this request was queued: re-reserve
            # under the current configuration and wait out any extra delay
            # (it stays counted as throttled until it actually dispatches).
            wait = self._wait_for(req, self.sim.now)
            if wait > 0:
                generation = self._generation
                self.sim.schedule(
                    wait, lambda: self._release(req, forward, generation)
                )
                return
        self._throttled_in_flight -= 1
        forward(req)

    def pending(self) -> int:
        return self._throttled_in_flight

    def snapshot(self) -> dict[str, float]:
        """Token levels of every limited group (negative = over budget)."""
        row = super().snapshot()
        row["throttled"] = float(self._throttled_in_flight)
        now = self.sim.now
        for path, buckets in self._buckets.items():
            if buckets is None:
                continue
            for key in ("rbps", "wbps", "riops", "wiops"):
                bucket = getattr(buckets, key)
                if bucket is not None:
                    row[f"group.{path}.{key}_tokens"] = bucket.tokens(now)
        return row


_MISSING = object()
