"""Trace artifact and exporters (JSONL, CSV, Chrome Trace Event Format).

A traced run produces a :class:`Trace`: request spans, sampler rows and
run metadata. Three serializations cover the common consumers:

* **JSONL** — one self-describing record per line (``type`` field:
  ``meta`` / ``span`` / ``sample``); the lossless interchange format,
  round-trippable via :func:`read_jsonl`.
* **CSV** — two flat tables (spans, samples) for pandas/spreadsheets.
* **Chrome Trace Event Format** — a browsable timeline for Perfetto or
  ``chrome://tracing``: per-request slices on per-app lanes split into
  held/queued/service phases, plus counter tracks for every sampled
  series. Timestamps are emitted in microseconds, the format's native
  unit (and the simulator's clock unit, conveniently).
"""

from __future__ import annotations

import csv
import heapq
import json
from dataclasses import dataclass, field

from repro.obs.span import LatencyAttribution, RequestSpan

#: Column order of the spans CSV (matches RequestSpan.as_dict()).
SPAN_FIELDS = (
    "app",
    "cgroup",
    "op",
    "pattern",
    "size",
    "device_index",
    "submit_us",
    "admit_us",
    "dispatch_us",
    "device_us",
    "complete_us",
    "held_us",
    "queued_us",
    "service_us",
    "latency_us",
)


@dataclass
class Trace:
    """Everything one traced scenario run recorded."""

    meta: dict = field(default_factory=dict)
    spans: list[RequestSpan] = field(default_factory=list)
    samples: list[dict] = field(default_factory=list)
    dropped_spans: int = 0

    def attribution(self, by: str = "app") -> dict[str, LatencyAttribution]:
        """Per-app (or per-cgroup) latency attribution over the spans."""
        from repro.obs.span import RequestTracer

        tracer = RequestTracer()
        tracer.spans = self.spans
        return tracer.attribution(by=by)

    def sample_keys(self) -> list[str]:
        """Union of all sample-row keys, ``t_us`` first (CSV header order)."""
        seen: dict[str, None] = {"t_us": None}
        for row in self.samples:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(trace: Trace, path: str) -> None:
    """One record per line: a meta header, then spans, then samples."""
    with open(path, "w", encoding="utf-8") as fh:
        header = {"type": "meta", "dropped_spans": trace.dropped_spans}
        header.update(trace.meta)
        fh.write(json.dumps(header) + "\n")
        for span in trace.spans:
            record = {"type": "span"}
            record.update(span.as_dict())
            fh.write(json.dumps(record) + "\n")
        for row in trace.samples:
            record = {"type": "sample"}
            record.update(row)
            fh.write(json.dumps(record) + "\n")


def read_jsonl(path: str) -> Trace:
    """Parse a file written by :func:`write_jsonl` back into a Trace."""
    trace = Trace()
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type")
            if kind == "meta":
                trace.dropped_spans = record.pop("dropped_spans", 0)
                trace.meta = record
            elif kind == "span":
                trace.spans.append(RequestSpan.from_dict(record))
            elif kind == "sample":
                trace.samples.append(record)
            else:
                raise ValueError(f"unknown trace record type {kind!r}")
    return trace


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def write_spans_csv(trace: Trace, path: str) -> None:
    """Write the trace's spans as CSV, one row per request."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=SPAN_FIELDS)
        writer.writeheader()
        for span in trace.spans:
            writer.writerow(span.as_dict())


def read_spans_csv(path: str) -> list[RequestSpan]:
    """Parse a file written by :func:`write_spans_csv`."""
    with open(path, "r", encoding="utf-8", newline="") as fh:
        return [RequestSpan.from_dict(row) for row in csv.DictReader(fh)]


def write_samples_csv(trace: Trace, path: str) -> None:
    """Write the periodic samples as CSV; absent keys render empty."""
    keys = trace.sample_keys()
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=keys, restval="")
        writer.writeheader()
        for row in trace.samples:
            writer.writerow(row)


def read_samples_csv(path: str) -> list[dict]:
    """Parse a file written by :func:`write_samples_csv` (floats only)."""
    rows: list[dict] = []
    with open(path, "r", encoding="utf-8", newline="") as fh:
        for raw in csv.DictReader(fh):
            rows.append(
                {key: float(value) for key, value in raw.items() if value != ""}
            )
    return rows


# ----------------------------------------------------------------------
# Chrome Trace Event Format
# ----------------------------------------------------------------------
# Phase slices get stable colour names from the trace-viewer palette so
# held/queued/service are visually distinguishable without zooming.
_PHASE_CNAMES = {
    "held": "terrible",
    "queued": "bad",
    "service": "good",
}


def _assign_lanes(spans: list[RequestSpan]) -> list[int]:
    """Greedy interval packing: one viewer lane (tid) per in-flight slot.

    Concurrent requests of one app must not share a lane or their slices
    would overlap; reusing the first lane free at submit time keeps the
    lane count equal to the app's peak queue depth.
    """
    order = sorted(range(len(spans)), key=lambda i: (spans[i].submit_us, i))
    lanes = [0] * len(spans)
    free: list[tuple[float, int]] = []  # (free_at, lane)
    next_lane = 0
    for index in order:
        span = spans[index]
        if free and free[0][0] <= span.submit_us:
            _, lane = heapq.heappop(free)
        else:
            lane = next_lane
            next_lane += 1
        lanes[index] = lane
        heapq.heappush(free, (span.complete_us, lane))
    return lanes


def chrome_trace_events(trace: Trace) -> list[dict]:
    """Build the Chrome ``traceEvents`` list for a trace."""
    events: list[dict] = []
    # One viewer process per app; pid 0 hosts the sampler counters.
    apps = sorted({span.app for span in trace.spans})
    pids = {app: index + 1 for index, app in enumerate(apps)}
    for app, pid in pids.items():
        cgroups = sorted({s.cgroup for s in trace.spans if s.app == app})
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"{app} ({', '.join(cgroups)})"},
            }
        )
    by_app: dict[str, list[RequestSpan]] = {app: [] for app in apps}
    for span in trace.spans:
        by_app[span.app].append(span)
    for app, spans in by_app.items():
        pid = pids[app]
        lanes = _assign_lanes(spans)
        for span, lane in zip(spans, lanes):
            phases = (
                ("held", span.submit_us, span.held_us),
                ("queued", span.admit_us, span.queued_us),
                ("service", span.dispatch_us, span.service_us),
            )
            for name, start, duration in phases:
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": span.op_name(),
                        "pid": pid,
                        "tid": lane,
                        "ts": start,
                        "dur": duration,
                        "cname": _PHASE_CNAMES[name],
                        "args": {
                            "op": span.op_name(),
                            "size": span.size,
                            "device": span.device_index,
                            "latency_us": span.latency_us,
                        },
                    }
                )
    if trace.samples:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": 0,
                "tid": 0,
                "ts": 0,
                "args": {"name": "stack sampler (io.stat)"},
            }
        )
        for row in trace.samples:
            ts = row["t_us"]
            for key, value in row.items():
                if key == "t_us":
                    continue
                events.append(
                    {
                        "ph": "C",
                        "name": key,
                        "pid": 0,
                        "tid": 0,
                        "ts": ts,
                        "args": {"value": value},
                    }
                )
    return events


def write_chrome_trace(trace: Trace, path: str) -> None:
    """Write a Perfetto/chrome://tracing-loadable JSON object."""
    document = {
        "traceEvents": chrome_trace_events(trace),
        "displayTimeUnit": "ms",
        "otherData": dict(trace.meta),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
