"""Builders for the paper's standard experimental setups (§III, §V-§VI).

Every figure in the evaluation is built from a handful of recurring
shapes; these builders construct them so the D1-D4 modules and the
benches stay declarative:

* the Fig. 2 three-app staggered timeline (64 KiB QD=8, 1.5 GiB/s caps);
* LC-app scaling on one core (Fig. 3);
* batch-app scaling over 1-7 SSDs (Fig. 4);
* N cgroups x 4 batch apps for fairness (Fig. 5/6);
* priority app + 4 saturating BE apps for trade-offs (Fig. 7) and
  bursts (§VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iorequest import GIB, KIB, Pattern
from repro.workloads.apps import batch_app, be_app, lc_app
from repro.workloads.spec import ActivityWindow, JobSpec

FIG2_REQUEST_SIZE = 64 * KIB
FIG2_QUEUE_DEPTH = 8
FIG2_RATE_LIMIT_BPS = 1.5 * GIB


def fig2_timeline_specs(time_scale: float = 1.0, rate_scale: float = 1.0) -> list[JobSpec]:
    """The Fig. 2 apps: A runs 0-50 s, B 10-70 s, C 20-50 s.

    ``time_scale`` compresses the timeline; ``rate_scale`` divides the
    rate caps to match a scaled device (see DESIGN.md).
    """
    second = 1e6 * time_scale

    def window(start_s: float, stop_s: float) -> tuple[ActivityWindow, ...]:
        return (ActivityWindow(start_s * second, stop_s * second),)

    def spec(name: str, cgroup: str, start_s: float, stop_s: float) -> JobSpec:
        return batch_app(
            name,
            cgroup,
            size=FIG2_REQUEST_SIZE,
            queue_depth=FIG2_QUEUE_DEPTH,
            rate_limit_bps=FIG2_RATE_LIMIT_BPS / rate_scale,
            windows=window(start_s, stop_s),
        )

    return [
        spec("A", "/tenants/a", 0.0, 50.0),
        spec("B", "/tenants/b", 10.0, 70.0),
        spec("C", "/tenants/c", 20.0, 50.0),
    ]


def lc_scaling_specs(n_apps: int) -> list[JobSpec]:
    """``n_apps`` LC-apps, one cgroup each (Fig. 3 / Q1)."""
    if n_apps < 1:
        raise ValueError("need at least one LC app")
    return [lc_app(f"lc{i}", f"/tenants/lc{i}") for i in range(n_apps)]


def batch_scaling_specs(n_apps: int, queue_depth: int = 256) -> list[JobSpec]:
    """``n_apps`` batch-apps, one cgroup each (Fig. 4 / Q2)."""
    if n_apps < 1:
        raise ValueError("need at least one batch app")
    return [
        batch_app(f"batch{i}", f"/tenants/batch{i}", queue_depth=queue_depth)
        for i in range(n_apps)
    ]


@dataclass(frozen=True)
class FairnessGroupSpec:
    """Description of one cgroup in a fairness scenario."""

    path: str
    weight: int
    size: int = 4 * KIB
    pattern: Pattern = Pattern.RANDOM
    read_fraction: float = 1.0


def fairness_specs(
    groups: list[FairnessGroupSpec],
    apps_per_group: int = 4,
    queue_depth: int = 256,
) -> list[JobSpec]:
    """``apps_per_group`` identical batch apps inside each cgroup (§VI-A)."""
    specs: list[JobSpec] = []
    for group in groups:
        for j in range(apps_per_group):
            specs.append(
                batch_app(
                    f"{group.path.strip('/').replace('/', '.')}-{j}",
                    group.path,
                    size=group.size,
                    pattern=group.pattern,
                    read_fraction=group.read_fraction,
                    queue_depth=queue_depth,
                )
            )
    return specs


def uniform_fairness_groups(n_groups: int) -> list[FairnessGroupSpec]:
    """N identical read-only groups with uniform weights (Q3)."""
    return [
        FairnessGroupSpec(path=f"/tenants/g{i}", weight=100) for i in range(n_groups)
    ]


def linear_weight_fairness_groups(n_groups: int, step: int = 100) -> list[FairnessGroupSpec]:
    """Weights increasing linearly with the group index (Q4)."""
    return [
        FairnessGroupSpec(path=f"/tenants/g{i}", weight=step * (i + 1))
        for i in range(n_groups)
    ]


# ----------------------------------------------------------------------
# Trade-off / burst building blocks (§VI-B, §VI-C)
# ----------------------------------------------------------------------
PRIORITY_GROUP = "/tenants/prio"
BE_GROUP = "/tenants/be"


@dataclass(frozen=True)
class BeWorkloadVariant:
    """A background-workload flavour from Fig. 7's legend."""

    key: str
    size: int
    pattern: Pattern
    read_fraction: float


BE_VARIANTS: dict[str, BeWorkloadVariant] = {
    "rand-4k": BeWorkloadVariant("rand-4k", 4 * KIB, Pattern.RANDOM, 1.0),
    "seq-4k": BeWorkloadVariant("seq-4k", 4 * KIB, Pattern.SEQUENTIAL, 1.0),
    "rand-256k": BeWorkloadVariant("rand-256k", 256 * KIB, Pattern.RANDOM, 1.0),
    "rand-4k-write": BeWorkloadVariant("rand-4k-write", 4 * KIB, Pattern.RANDOM, 0.0),
}


def tradeoff_specs(
    priority_kind: str,
    be_variant: str = "rand-4k",
    n_be_apps: int = 4,
    be_queue_depth: int = 256,
    priority_windows: tuple[ActivityWindow, ...] = (ActivityWindow(0.0),),
    priority_queue_depth: int = 32,
) -> list[JobSpec]:
    """One priority app (LC or batch) plus saturating BE apps.

    The priority app alone must not saturate the SSD (§VI-B): the LC app
    runs QD=1 and the priority batch app a moderate queue depth (32 at
    full device speed; scale it down together with ``device_scale`` so
    the non-saturating property is preserved on slowed devices).
    """
    variant = BE_VARIANTS[be_variant]
    if priority_kind == "lc":
        priority = lc_app("prio", PRIORITY_GROUP, windows=priority_windows)
    elif priority_kind == "batch":
        priority = batch_app(
            "prio",
            PRIORITY_GROUP,
            queue_depth=priority_queue_depth,
            windows=priority_windows,
        )
    else:
        raise ValueError(f"priority_kind must be 'lc' or 'batch', got {priority_kind!r}")
    background = [
        be_app(
            f"be{i}",
            BE_GROUP,
            size=variant.size,
            pattern=variant.pattern,
            read_fraction=variant.read_fraction,
            queue_depth=be_queue_depth,
        )
        for i in range(n_be_apps)
    ]
    return [priority] + background


def burst_specs(
    priority_kind: str,
    burst_start_us: float,
    be_variant: str = "rand-4k",
    be_queue_depth: int = 256,
    priority_queue_depth: int = 32,
) -> list[JobSpec]:
    """Trade-off shape, but the priority app arrives mid-run (§VI-C)."""
    return tradeoff_specs(
        priority_kind,
        be_variant=be_variant,
        be_queue_depth=be_queue_depth,
        priority_windows=(ActivityWindow(burst_start_us),),
        priority_queue_depth=priority_queue_depth,
    )


def robustness_specs(
    be_queue_depth: int = 64, n_be_apps: int = 4
) -> list[JobSpec]:
    """The D5 shape: one LC app + saturating BE readers, healthy or not.

    Identical to the §VI-B trade-off shape with an LC priority app; D5
    re-runs it under each :mod:`repro.faults` preset to ask which knob
    still protects the LC app when the device itself misbehaves.
    """
    return tradeoff_specs(
        "lc",
        be_variant="rand-4k",
        n_be_apps=n_be_apps,
        be_queue_depth=be_queue_depth,
    )


def scaled_priority_qd(device_scale: float, base_qd: int = 32) -> int:
    """Priority batch-app queue depth for a scaled device.

    Device scaling is pure time dilation (see ``SsdModel.scaled``): the
    number of requests in flight at every station is preserved, so the
    queue depth needs no adjustment. Kept as a named hook so the policy
    lives in one place.
    """
    return base_qd
