"""Unit tests for placement strategies against synthetic matrices.

No simulation runs here: interference matrices are hand-built so each
strategy's decisions are checked against known-by-construction
interference structure. The SsdArray tests pin the satellite fix of
this PR: all array randomness flows through named ``RngStreams``.
"""

import pytest

from repro.fleet.interference import (
    InterferenceMatrix,
    PairEffect,
    TenantMeasure,
    slo_violation,
)
from repro.fleet.placement import (
    Placement,
    STRATEGIES,
    device_violation,
    eviction_penalty,
    place,
    total_predicted_violation,
)
from repro.fleet.spec import FleetSpec, TenantSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.ssd.array import PLACEMENT_STREAM, SsdArray
from repro.ssd.presets import samsung_980pro_like
from repro.tune.slo import VIOLATION_CAP


def make_matrix(
    fleet: FleetSpec,
    solo: dict[str, tuple[float, float]],
    pairs: dict[tuple[str, str], tuple[float, float]] | None = None,
) -> InterferenceMatrix:
    """A synthetic matrix: ``solo[name] = (p99_us, bw)``, directional
    ``pairs[(tenant, partner)] = (p99_ratio, retention)``, default benign."""
    pairs = pairs or {}
    effects = {}
    names = fleet.tenant_names()
    for tenant in names:
        for partner in names:
            if tenant == partner:
                continue
            ratio, retention = pairs.get((tenant, partner), (1.0, 1.0))
            effects[(tenant, partner)] = PairEffect(
                tenant=tenant,
                partner=partner,
                p99_ratio=ratio,
                bandwidth_retention=retention,
            )
    return InterferenceMatrix(
        fleet_name=fleet.name,
        solo={
            name: TenantMeasure(p99_us=p99, bandwidth_mib_s=bw)
            for name, (p99, bw) in solo.items()
        },
        effects=effects,
    )


def small_fleet(**overrides) -> FleetSpec:
    """One LC tenant plus two batch tenants over 1x2 devices."""
    params = dict(
        name="small",
        hosts=1,
        devices_per_host=2,
        max_tenants_per_device=2,
        tenants=(
            TenantSpec("lc", kind="lc", slo="p99<=100"),
            TenantSpec("big", kind="batch", slo="bw>=500"),
            TenantSpec("mid", kind="batch", slo="bw>=200"),
        ),
    )
    params.update(overrides)
    return FleetSpec(**params)


SOLO = {"lc": (80.0, 50.0), "big": (1000.0, 2000.0), "mid": (1000.0, 1000.0)}
#: Batch tenants crush the LC tenant's p99; batch-batch merely halves bw.
PAIRS = {
    ("lc", "big"): (50.0, 0.2),
    ("lc", "mid"): (50.0, 0.2),
    ("big", "mid"): (1.5, 0.5),
    ("mid", "big"): (1.5, 0.5),
}


class TestPredictionMath:
    def test_predicted_composes_multiplicatively(self):
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO, PAIRS)
        alone = matrix.predicted("lc", ())
        assert alone == matrix.solo["lc"]
        shared = matrix.predicted("lc", ("big",))
        assert shared.p99_us == pytest.approx(80.0 * 50.0)
        assert shared.bandwidth_mib_s == pytest.approx(50.0 * 0.2)

    def test_slo_violation_caps(self):
        fleet = small_fleet()
        tenant = fleet.tenant("lc")
        blown = TenantMeasure(p99_us=1e9, bandwidth_mib_s=0.0)
        assert slo_violation(blown, tenant) == VIOLATION_CAP
        met = TenantMeasure(p99_us=50.0, bandwidth_mib_s=1e9)
        assert slo_violation(met, tenant) == 0.0
        # Best-effort tenants (no SLO) never contribute.
        free = FleetSpec(
            name="f",
            hosts=1,
            devices_per_host=1,
            tenants=(TenantSpec("be", kind="be"),),
        )
        assert slo_violation(blown, free.tenant("be")) == 0.0

    def test_device_violation_sums_residents(self):
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO, PAIRS)
        assert device_violation(matrix, fleet, ()) == 0.0
        assert device_violation(matrix, fleet, ("lc",)) == 0.0
        both = device_violation(matrix, fleet, ("lc", "big"))
        # lc p99 capped at 10; big loses half... no: retention for big
        # with lc defaults to benign (1.0), so only lc contributes.
        assert both == VIOLATION_CAP

    def test_total_adds_eviction_penalties(self):
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO, PAIRS)
        assignment = {"h0d0": ("lc",), "h0d1": ("big",)}
        base = total_predicted_violation(matrix, fleet, assignment)
        with_evict = total_predicted_violation(
            matrix, fleet, assignment, evicted=("mid",)
        )
        assert with_evict == base + eviction_penalty(fleet, "mid")
        assert eviction_penalty(fleet, "mid") == VIOLATION_CAP  # 1 objective


class TestStrategies:
    def test_unknown_strategy_raises(self):
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO, PAIRS)
        with pytest.raises(ValueError, match="unknown strategy"):
            place(fleet, matrix, "oracle")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_capacity_respected_and_everyone_accounted(self, strategy):
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO, PAIRS)
        placement = place(fleet, matrix, strategy, seed=7)
        placed = [n for names in placement.assignment.values() for n in names]
        assert sorted(placed + list(placement.evicted)) == sorted(
            fleet.tenant_names()
        )
        for names in placement.assignment.values():
            assert len(names) <= fleet.max_tenants_per_device

    def test_random_is_a_pure_function_of_the_seed(self):
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO, PAIRS)
        a = place(fleet, matrix, "random", seed=3)
        b = place(fleet, matrix, "random", seed=3)
        assert a.to_json_dict() == b.to_json_dict()

    def test_random_draws_from_the_named_placement_stream(self):
        """The satellite fix: placement randomness = the named stream."""
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO)  # benign: no saturation pass
        seed = 11
        placement = place(fleet, matrix, "random", seed=seed)
        rng = RngStreams(seed).stream(PLACEMENT_STREAM)
        slots = list(fleet.slots())
        expected: dict[str, list[str]] = {slot: [] for slot in slots}
        for tenant in fleet.tenant_names():
            open_slots = [
                s
                for s in slots
                if len(expected[s]) < fleet.max_tenants_per_device
            ]
            expected[open_slots[rng.randrange(len(open_slots))]].append(tenant)
        assert {
            slot: tuple(names) for slot, names in expected.items()
        } == placement.assignment

    def test_binpack_is_first_fit_decreasing_by_demand(self):
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO)  # interference-free
        placement = place(fleet, matrix, "binpack")
        # Demand order: big (2000), mid (1000), lc (50); first-fit packs
        # big+mid onto the first slot, lc onto the second.
        assert placement.assignment["h0d0"] == ("big", "mid")
        assert placement.assignment["h0d1"] == ("lc",)

    def test_serifos_keeps_lc_away_from_aggressors(self):
        fleet = small_fleet()
        matrix = make_matrix(fleet, SOLO, PAIRS)
        placement = place(fleet, matrix, "serifos")
        lc_slot = placement.slot_of("lc")
        assert lc_slot is not None
        assert placement.residents(lc_slot) == ("lc",)
        # The two batch tenants share the other device (their mutual
        # halving keeps both floors met: 1000 > 500, 500 > 200).
        assert placement.predicted_violation == 0.0
        random_placement = place(fleet, matrix, "random", seed=0)
        assert (
            placement.predicted_violation
            <= random_placement.predicted_violation
        )


class TestSaturationPass:
    def test_migration_to_an_open_slot(self):
        # Three devices, two mutually-toxic tenants forced together by
        # binpack: the saturation pass must split them onto free slots.
        fleet = small_fleet(
            devices_per_host=3,
            saturation_threshold=5.0,
            tenants=(
                TenantSpec("a", kind="batch", slo="p99<=100,bw>=500"),
                TenantSpec("b", kind="batch", slo="p99<=100,bw>=500"),
            ),
        )
        matrix = make_matrix(
            fleet,
            {"a": (80.0, 1000.0), "b": (80.0, 1000.0)},
            {("a", "b"): (1000.0, 0.01), ("b", "a"): (1000.0, 0.01)},
        )
        placement = place(fleet, matrix, "binpack")
        assert placement.evicted == ()
        assert placement.slot_of("a") != placement.slot_of("b")
        assert any("saturation" in m.reason for m in placement.migrations)
        moved = [m for m in placement.migrations if m.dest]
        assert moved, "expected a migration, not an eviction"

    def test_eviction_when_no_slot_helps(self):
        # One device only: nowhere to migrate, so the offender is evicted
        # and the placement carries the penalty.
        fleet = small_fleet(
            devices_per_host=1,
            saturation_threshold=5.0,
            tenants=(
                TenantSpec("a", kind="batch", slo="p99<=100,bw>=500"),
                TenantSpec("b", kind="batch", slo="p99<=100,bw>=500"),
            ),
        )
        matrix = make_matrix(
            fleet,
            {"a": (80.0, 1000.0), "b": (80.0, 1000.0)},
            {("a", "b"): (1000.0, 0.01), ("b", "a"): (1000.0, 0.01)},
        )
        placement = place(fleet, matrix, "binpack")
        assert len(placement.evicted) == 1
        assert any(m.dest == "" for m in placement.migrations)
        assert placement.predicted_violation >= eviction_penalty(
            fleet, placement.evicted[0]
        )


class TestPlacementRecord:
    def test_slot_of_and_residents(self):
        placement = Placement(
            fleet_name="f",
            strategy="binpack",
            assignment={"h0d0": ("a", "b"), "h0d1": ()},
            evicted=("c",),
        )
        assert placement.slot_of("a") == "h0d0"
        assert placement.slot_of("c") is None
        assert placement.residents("h0d1") == ()
        doc = placement.to_json_dict()
        assert doc["assignment"] == {"h0d0": ["a", "b"], "h0d1": []}
        assert doc["evicted"] == ["c"]


class TestSsdArrayStreams:
    """SsdArray randomness rides the named-RngStreams convention."""

    def test_random_device_assignment_uses_the_named_stream(self):
        sim = Simulator()
        array = SsdArray(sim, samsung_980pro_like(), 4, RngStreams(7))
        expected_rng = RngStreams(7).stream(PLACEMENT_STREAM)
        draws = [array.random_device_for_app() for _ in range(20)]
        assert draws == [expected_rng.randrange(4) for _ in range(20)]
        assert any(d != draws[0] for d in draws)  # actually random

    def test_placement_draws_do_not_perturb_device_noise(self):
        model = samsung_980pro_like()
        quiet = SsdArray(Simulator(), model, 2, RngStreams(7))
        noisy = SsdArray(Simulator(), model, 2, RngStreams(7))
        for _ in range(100):
            noisy.random_device_for_app()
        # The device service-noise stream is independent of the
        # placement stream: identical next draws either way.
        assert (
            quiet.devices[0].rng.random() == noisy.devices[0].rng.random()
        )

    def test_round_robin_unchanged(self):
        array = SsdArray(Simulator(), samsung_980pro_like(), 3, RngStreams(1))
        assert [array.device_for_app(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]
