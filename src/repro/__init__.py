"""isol-bench: storage performance isolation benchmarking (reproduction).

Reproduction of "Does Linux Provide Performance Isolation for NVMe SSDs?
Configuring cgroups for I/O Control in the NVMe Era" (IISWC 2025) as a
self-contained simulation: an NVMe SSD model, the Linux cgroup v2 I/O
control mechanisms, a fio-like workload generator, and the isol-bench
benchmark suite evaluating four isolation desiderata (overhead,
proportional fairness, priority/utilization trade-offs, burst support).

Quickstart::

    from repro import Scenario, NoneKnob, run_scenario
    from repro.workloads import batch_app

    scenario = Scenario(
        name="hello",
        knob=NoneKnob(),
        apps=[batch_app("tenant-a", "/tenants/a")],
        duration_s=0.5,
    )
    print(run_scenario(scenario).describe())
"""

from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    KnobConfig,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
)
from repro.core.runner import ScenarioResult, run_scenario
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.faults.presets import get_fault_plan
from repro.iorequest import GIB, KIB, MIB, IoRequest, OpType, Pattern
from repro.obs.config import TraceConfig

__version__ = "1.0.0"

__all__ = [
    "Scenario",
    "KnobConfig",
    "NoneKnob",
    "MqDeadlineKnob",
    "BfqKnob",
    "IoMaxKnob",
    "IoLatencyKnob",
    "IoCostKnob",
    "ScenarioResult",
    "run_scenario",
    "TraceConfig",
    "FaultPlan",
    "RetryPolicy",
    "get_fault_plan",
    "IoRequest",
    "OpType",
    "Pattern",
    "KIB",
    "MIB",
    "GIB",
    "__version__",
]
