"""Simulated NVMe SSD devices.

The paper runs on real Samsung 980 PRO (flash) and Intel Optane SSDs; this
package provides the synthetic equivalent: a request-level device model
with the properties the paper's observations depend on --

* internal parallelism (flash channels/planes) bounding random IOPS,
* a shared data bus bounding sequential bandwidth,
* asymmetric read/write costs,
* garbage collection triggered by sustained writes (write amplification),
* a bounded NVMe queue depth (1024, as in the paper's io.latency analysis).

Presets approximate the two devices used in the paper at the scale the
simulator runs at; see :mod:`repro.ssd.presets`.
"""

from repro.ssd.model import SsdModel
from repro.ssd.device import SimulatedNvmeDevice
from repro.ssd.array import PLACEMENT_STREAM, SsdArray
from repro.ssd.presets import samsung_980pro_like, intel_optane_like

__all__ = [
    "SsdModel",
    "SimulatedNvmeDevice",
    "SsdArray",
    "PLACEMENT_STREAM",
    "samsung_980pro_like",
    "intel_optane_like",
]
