"""Knob file formats: parsing and validation.

Each knob file accepts the same line format the kernel does. Per-device
knobs (io.max, io.latency, io.cost.*) take lines of
``MAJ:MIN key=value ...`` and merge per device across writes; group-level
knobs (io.weight, io.bfq.weight, io.prio.class) take a single token.

Out-of-range and malformed writes raise
:class:`~repro.cgroups.errors.InvalidKnobValue`, mirroring EINVAL.
"""

from __future__ import annotations

import enum
import math
import re
from dataclasses import dataclass, replace

from repro.cgroups.errors import InvalidKnobValue

_DEVICE_RE = re.compile(r"^(\d+):(\d+)$")

IO_WEIGHT_MIN, IO_WEIGHT_MAX, IO_WEIGHT_DEFAULT = 1, 10000, 100
BFQ_WEIGHT_MIN, BFQ_WEIGHT_MAX, BFQ_WEIGHT_DEFAULT = 1, 1000, 100


class PrioClass(enum.IntEnum):
    """I/O scheduling class hints (ioprio classes).

    Lower numeric value = higher dispatch priority in MQ-Deadline's
    per-class queues; ``NONE`` falls back to best-effort.
    """

    NONE = 0
    REALTIME = 1
    BEST_EFFORT = 2
    IDLE = 3


_PRIO_ALIASES = {
    "no-change": PrioClass.NONE,
    "none": PrioClass.NONE,
    "promote-to-rt": PrioClass.REALTIME,
    "realtime": PrioClass.REALTIME,
    "rt": PrioClass.REALTIME,
    "restrict-to-be": PrioClass.BEST_EFFORT,
    "best-effort": PrioClass.BEST_EFFORT,
    "be": PrioClass.BEST_EFFORT,
    "idle": PrioClass.IDLE,
}


def parse_device_id(token: str) -> str:
    """Validate and normalize a ``MAJ:MIN`` device id."""
    match = _DEVICE_RE.match(token)
    if not match:
        raise InvalidKnobValue(f"expected MAJ:MIN device id, got {token!r}")
    return f"{int(match.group(1))}:{int(match.group(2))}"


def _parse_limit(value: str, knob: str, key: str) -> float:
    """Parse an integer limit or the literal ``max`` (no limit)."""
    if value == "max":
        return math.inf
    try:
        number = int(value)
    except ValueError:
        raise InvalidKnobValue(f"{knob}: {key}={value!r} is not an integer or 'max'") from None
    if number <= 0:
        raise InvalidKnobValue(f"{knob}: {key} must be positive, got {number}")
    return float(number)


def _split_kv(parts: list[str], knob: str) -> dict[str, str]:
    pairs: dict[str, str] = {}
    for part in parts:
        if "=" not in part:
            raise InvalidKnobValue(f"{knob}: expected key=value, got {part!r}")
        key, _, value = part.partition("=")
        pairs[key] = value
    return pairs


# ----------------------------------------------------------------------
# Group-level knobs
# ----------------------------------------------------------------------
def parse_io_weight(raw: str) -> int:
    """``io.weight``: '100' or 'default 100', range 1-10000."""
    tokens = raw.split()
    if len(tokens) == 2 and tokens[0] == "default":
        tokens = tokens[1:]
    if len(tokens) != 1:
        raise InvalidKnobValue(f"io.weight: cannot parse {raw!r}")
    try:
        weight = int(tokens[0])
    except ValueError:
        raise InvalidKnobValue(f"io.weight: {tokens[0]!r} is not an integer") from None
    if not IO_WEIGHT_MIN <= weight <= IO_WEIGHT_MAX:
        raise InvalidKnobValue(
            f"io.weight: {weight} outside [{IO_WEIGHT_MIN}, {IO_WEIGHT_MAX}]"
        )
    return weight


def parse_bfq_weight(raw: str) -> int:
    """``io.bfq.weight``: absolute weight, range 1-1000."""
    tokens = raw.split()
    if len(tokens) == 2 and tokens[0] == "default":
        tokens = tokens[1:]
    if len(tokens) != 1:
        raise InvalidKnobValue(f"io.bfq.weight: cannot parse {raw!r}")
    try:
        weight = int(tokens[0])
    except ValueError:
        raise InvalidKnobValue(f"io.bfq.weight: {tokens[0]!r} is not an integer") from None
    if not BFQ_WEIGHT_MIN <= weight <= BFQ_WEIGHT_MAX:
        raise InvalidKnobValue(
            f"io.bfq.weight: {weight} outside [{BFQ_WEIGHT_MIN}, {BFQ_WEIGHT_MAX}]"
        )
    return weight


def parse_prio_class(raw: str) -> PrioClass:
    """``io.prio.class``: a scheduling-class alias."""
    token = raw.strip().lower()
    if token not in _PRIO_ALIASES:
        raise InvalidKnobValue(
            f"io.prio.class: unknown class {raw!r}; options: {sorted(_PRIO_ALIASES)}"
        )
    return _PRIO_ALIASES[token]


# ----------------------------------------------------------------------
# io.max
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IoMaxLimits:
    """Per-device io.max limits; ``inf`` means unlimited."""

    rbps: float = math.inf
    wbps: float = math.inf
    riops: float = math.inf
    wiops: float = math.inf

    def is_unlimited(self) -> bool:
        return all(
            math.isinf(v) for v in (self.rbps, self.wbps, self.riops, self.wiops)
        )


def parse_io_max_line(raw: str) -> tuple[str, IoMaxLimits]:
    """Parse one ``io.max`` line into (device, limits)."""
    tokens = raw.split()
    if not tokens:
        raise InvalidKnobValue("io.max: empty write")
    device = parse_device_id(tokens[0])
    pairs = _split_kv(tokens[1:], "io.max")
    allowed = {"rbps", "wbps", "riops", "wiops"}
    unknown = set(pairs) - allowed
    if unknown:
        raise InvalidKnobValue(f"io.max: unknown keys {sorted(unknown)}")
    limits = IoMaxLimits(
        **{key: _parse_limit(value, "io.max", key) for key, value in pairs.items()}
    )
    return device, limits


# ----------------------------------------------------------------------
# io.latency
# ----------------------------------------------------------------------
def parse_io_latency_line(raw: str) -> tuple[str, float]:
    """Parse one ``io.latency`` line into (device, target_us)."""
    tokens = raw.split()
    if not tokens:
        raise InvalidKnobValue("io.latency: empty write")
    device = parse_device_id(tokens[0])
    pairs = _split_kv(tokens[1:], "io.latency")
    if set(pairs) != {"target"}:
        raise InvalidKnobValue(f"io.latency: expected exactly target=, got {raw!r}")
    try:
        target = float(pairs["target"])
    except ValueError:
        raise InvalidKnobValue(f"io.latency: target={pairs['target']!r} not a number") from None
    if target <= 0:
        raise InvalidKnobValue(f"io.latency: target must be positive, got {target}")
    return device, target


# ----------------------------------------------------------------------
# io.cost.qos / io.cost.model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IoCostQosParams:
    """Per-device io.cost.qos parameters (§IV-B).

    ``rpct/rlat`` and ``wpct/wlat`` define the congestion signal (read and
    write latency percentile targets, us); ``min``/``max`` bound the vrate
    scaling window in percent of the model speed.
    """

    enable: bool = False
    ctrl: str = "auto"
    rpct: float = 95.0
    rlat_us: float = 0.0
    wpct: float = 95.0
    wlat_us: float = 0.0
    vrate_min_pct: float = 25.0
    vrate_max_pct: float = 100.0

    def validate(self) -> "IoCostQosParams":
        for pct_name in ("rpct", "wpct"):
            pct = getattr(self, pct_name)
            if not 0.0 <= pct <= 100.0:
                raise InvalidKnobValue(f"io.cost.qos: {pct_name} must be in [0,100], got {pct}")
        if self.vrate_min_pct <= 0 or self.vrate_max_pct <= 0:
            raise InvalidKnobValue("io.cost.qos: min/max must be positive")
        if self.vrate_min_pct > self.vrate_max_pct:
            raise InvalidKnobValue(
                f"io.cost.qos: min={self.vrate_min_pct} > max={self.vrate_max_pct}"
            )
        if self.ctrl not in ("auto", "user"):
            raise InvalidKnobValue(f"io.cost.qos: ctrl must be auto|user, got {self.ctrl!r}")
        return self


def parse_io_cost_qos_line(raw: str) -> tuple[str, IoCostQosParams]:
    """Parse one ``io.cost.qos`` line."""
    tokens = raw.split()
    if not tokens:
        raise InvalidKnobValue("io.cost.qos: empty write")
    device = parse_device_id(tokens[0])
    pairs = _split_kv(tokens[1:], "io.cost.qos")
    params = IoCostQosParams()
    mapping = {
        "rpct": "rpct",
        "rlat": "rlat_us",
        "wpct": "wpct",
        "wlat": "wlat_us",
        "min": "vrate_min_pct",
        "max": "vrate_max_pct",
    }
    for key, value in pairs.items():
        if key == "enable":
            params = replace(params, enable=value not in ("0", "false"))
        elif key == "ctrl":
            params = replace(params, ctrl=value)
        elif key in mapping:
            try:
                params = replace(params, **{mapping[key]: float(value)})
            except ValueError:
                raise InvalidKnobValue(f"io.cost.qos: {key}={value!r} not a number") from None
        else:
            raise InvalidKnobValue(f"io.cost.qos: unknown key {key!r}")
    return device, params.validate()


@dataclass(frozen=True)
class IoCostModelParams:
    """Per-device io.cost.model parameters (the kernel's linear model).

    Six throughput parameters describe the device: sequential/random IOPS
    and bandwidth per direction. The controller derives per-I/O and
    per-page cost coefficients from them, exactly as blk-iocost does.
    """

    ctrl: str = "auto"
    model: str = "linear"
    rbps: float = 0.0
    rseqiops: float = 0.0
    rrandiops: float = 0.0
    wbps: float = 0.0
    wseqiops: float = 0.0
    wrandiops: float = 0.0

    def validate(self) -> "IoCostModelParams":
        if self.model != "linear":
            raise InvalidKnobValue(f"io.cost.model: only linear supported, got {self.model!r}")
        if self.ctrl not in ("auto", "user"):
            raise InvalidKnobValue(f"io.cost.model: ctrl must be auto|user, got {self.ctrl!r}")
        for name in ("rbps", "rseqiops", "rrandiops", "wbps", "wseqiops", "wrandiops"):
            if getattr(self, name) < 0:
                raise InvalidKnobValue(f"io.cost.model: {name} must be >= 0")
        return self


def parse_io_cost_model_line(raw: str) -> tuple[str, IoCostModelParams]:
    """Parse one ``io.cost.model`` line."""
    tokens = raw.split()
    if not tokens:
        raise InvalidKnobValue("io.cost.model: empty write")
    device = parse_device_id(tokens[0])
    pairs = _split_kv(tokens[1:], "io.cost.model")
    params = IoCostModelParams()
    numeric = {"rbps", "rseqiops", "rrandiops", "wbps", "wseqiops", "wrandiops"}
    for key, value in pairs.items():
        if key == "ctrl":
            params = replace(params, ctrl=value)
        elif key == "model":
            params = replace(params, model=value)
        elif key in numeric:
            try:
                params = replace(params, **{key: float(value)})
            except ValueError:
                raise InvalidKnobValue(f"io.cost.model: {key}={value!r} not a number") from None
        else:
            raise InvalidKnobValue(f"io.cost.model: unknown key {key!r}")
    return device, params.validate()


# ----------------------------------------------------------------------
# Knob registry: file name -> (per_device?, parse function)
# ----------------------------------------------------------------------
@dataclass
class KnobSpec:
    """How a knob file behaves: scalar vs per-device, root-only or not."""

    name: str
    per_device: bool
    root_only: bool
    parse: object  # Callable; typed loosely to keep the table readable.


KNOB_SPECS: dict[str, KnobSpec] = {
    "io.weight": KnobSpec("io.weight", per_device=False, root_only=False, parse=parse_io_weight),
    "io.bfq.weight": KnobSpec(
        "io.bfq.weight", per_device=False, root_only=False, parse=parse_bfq_weight
    ),
    "io.prio.class": KnobSpec(
        "io.prio.class", per_device=False, root_only=False, parse=parse_prio_class
    ),
    "io.max": KnobSpec("io.max", per_device=True, root_only=False, parse=parse_io_max_line),
    "io.latency": KnobSpec(
        "io.latency", per_device=True, root_only=False, parse=parse_io_latency_line
    ),
    "io.cost.qos": KnobSpec(
        "io.cost.qos", per_device=True, root_only=True, parse=parse_io_cost_qos_line
    ),
    "io.cost.model": KnobSpec(
        "io.cost.model", per_device=True, root_only=True, parse=parse_io_cost_model_line
    ),
}
