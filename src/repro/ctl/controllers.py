"""The three knob controllers: PID io.max, vrate io.cost, QD io.latency.

Each controller reads SLO drift from the plane's windowed
:class:`~repro.ctl.base.ControlObservation` and actuates through the
same interface a userspace daemon has on Linux: it *rewrites the knob
sysfs file* and pokes the kernel-side controller to re-read it
(:meth:`~repro.iocontrol.iomax.IoMaxController.invalidate`,
:meth:`~repro.iocontrol.iocost.IoCostController.refresh_qos`,
:meth:`~repro.iocontrol.iolatency.IoLatencyController.refresh_targets`).
All three share the anti-windup PID / rate-limiter primitives' no-NaN,
no-negative guarantees: garbage observations hold the current setting.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.cgroups.knobs import IoCostQosParams
from repro.ctl.base import Actuation, ControlObservation, Controller
from repro.ctl.config import IoMaxCtlParams, QdLimitCtlParams, VrateCtlParams
from repro.ctl.pid import PidState, RateLimiter


def slo_error(obs: ControlObservation) -> float:
    """Normalized headroom of the worst p99 objective, in ``[-1, 1]``.

    Positive: the tightest latency objective still has that fraction of
    headroom (safe to loosen). Negative: the objective is exceeded by
    that fraction (must tighten). A starved group (no completions, p99
    measured as inf) pins the error at -1.
    """
    errors = []
    for term in obs.score.terms:
        if term.kind != "p99":
            continue
        if not math.isfinite(term.measured):
            errors.append(-1.0)
        elif term.target > 0:
            errors.append((term.target - term.measured) / term.target)
    if not errors:
        return 0.0
    return max(-1.0, min(1.0, min(errors)))


class PidIoMaxController(Controller):
    """PID loop on one cgroup's io.max cap (fraction of saturation).

    The plant input is the capped group's rbps/wbps limit expressed as a
    fraction of the device's 4 KiB random-read saturation bandwidth; the
    error is :func:`slo_error` with violations boosted so the loop
    tightens fast under drift and re-loosens slowly once the SLO holds
    (reclaiming the utilization that static caps strand, §VII O8).
    """

    name = "pid-iomax"

    def __init__(
        self,
        sim,
        hierarchy: CgroupHierarchy,
        throttles: list,
        device_ids: list[str],
        group: str,
        params: IoMaxCtlParams,
        max_read_bps: float,
        initial_fraction: float,
        period_us: float,
    ):
        """``max_read_bps`` is the per-device saturation bandwidth."""
        super().__init__(sim, period_us)
        self.hierarchy = hierarchy
        self.throttles = throttles
        self.device_ids = device_ids
        self.group = group
        self.params = params
        self.max_read_bps = max_read_bps
        initial = min(
            max(initial_fraction, params.floor_fraction), params.ceiling_fraction
        )
        self.fraction = initial
        self.pid = PidState(
            params.pid, params.floor_fraction, params.ceiling_fraction, initial
        )
        self.limiter = RateLimiter(
            max_step_fraction=params.max_step_fraction,
            max_recover_fraction=params.max_recover_fraction,
            min_interval_us=params.min_interval_us,
        )
        self._obs: Optional[ControlObservation] = None

    def observe(self, obs: Optional[ControlObservation]) -> None:
        """Store the window for the next ``actuate``."""
        self._obs = obs

    def actuate(self) -> list[Actuation]:
        """One PID step; rewrite io.max when the cap should move."""
        obs = self._obs
        if obs is None:
            return []
        error = slo_error(obs)
        if error < 0:
            error *= self.params.pid.violation_boost
        proposed = self.pid.step(error)
        record = lambda value, applied, reason: Actuation(  # noqa: E731
            t_us=self.sim.now,
            controller=self.name,
            knob="io.max",
            cgroup=self.group,
            previous=self.fraction,
            value=value,
            applied=applied,
            reason=reason,
        )
        if not self.limiter.ready(self.sim.now):
            return [record(self.fraction, False, "min-interval")]
        value = self.limiter.clamp(self.fraction, proposed)
        if abs(value - self.fraction) < self.params.deadband_fraction * self.fraction:
            return [record(self.fraction, False, "deadband")]
        reason = "drift" if value < self.fraction else "recover"
        limit = value * self.max_read_bps
        group = self.hierarchy.find(self.group)
        for device_id in self.device_ids:
            group.write(
                "io.max", f"{device_id} rbps={int(limit)} wbps={int(limit)}"
            )
        for throttle in self.throttles:
            throttle.invalidate()
        actuation = record(value, True, reason)
        self.fraction = value
        self.limiter.mark(self.sim.now)
        return [actuation]

    def counters(self) -> dict[str, float]:
        """Applied/skipped plus the cap's final resting fraction."""
        row = super().counters()
        row["final_fraction"] = self.fraction
        return row


class VrateController(Controller):
    """Multiplicative nudging of the io.cost qos vrate ceiling.

    Rewrites the root-only ``io.cost.qos`` file with a shrunken (drift)
    or recovered (SLO met) ``max`` percentage and pokes each device's
    :class:`~repro.iocontrol.iocost.IoCostController` to re-read it --
    tightening the window blk-iocost's own QoS loop may move vrate in.
    """

    name = "vrate"

    def __init__(
        self,
        sim,
        hierarchy: CgroupHierarchy,
        throttles: list,
        device_ids: list[str],
        qos: IoCostQosParams,
        params: VrateCtlParams,
        period_us: float,
    ):
        """``qos`` is the statically configured baseline to recover to."""
        super().__init__(sim, period_us)
        self.hierarchy = hierarchy
        self.throttles = throttles
        self.device_ids = device_ids
        self.base_qos = qos
        self.params = params
        self.ceiling_pct = qos.vrate_max_pct
        self.limiter = RateLimiter(
            max_step_fraction=1.0, min_interval_us=params.min_interval_us
        )
        self._obs: Optional[ControlObservation] = None

    def observe(self, obs: Optional[ControlObservation]) -> None:
        """Store the window for the next ``actuate``."""
        self._obs = obs

    def actuate(self) -> list[Actuation]:
        """Nudge the vrate ceiling down on drift, up on recovery."""
        obs = self._obs
        if obs is None:
            return []
        params = self.params
        record = lambda value, applied, reason: Actuation(  # noqa: E731
            t_us=self.sim.now,
            controller=self.name,
            knob="io.cost.qos",
            cgroup="",
            previous=self.ceiling_pct,
            value=value,
            applied=applied,
            reason=reason,
        )
        if obs.score.needs_tightening:
            proposed = max(params.floor_pct, self.ceiling_pct * params.down_step)
            reason = "drift"
            if proposed >= self.ceiling_pct:
                return [record(self.ceiling_pct, False, "at-floor")]
        elif obs.score.meets_slo:
            proposed = min(
                self.base_qos.vrate_max_pct, self.ceiling_pct * params.up_step
            )
            reason = "recover"
            if proposed <= self.ceiling_pct:
                return [record(self.ceiling_pct, False, "at-ceiling")]
        else:
            # Bandwidth/utilization drift without latency drift: hold --
            # shrinking vrate further would starve throughput harder.
            return [record(self.ceiling_pct, False, "hold")]
        if not self.limiter.ready(self.sim.now):
            return [record(self.ceiling_pct, False, "min-interval")]
        value = self.limiter.clamp(self.ceiling_pct, proposed)
        if abs(value - self.ceiling_pct) < params.deadband_pct:
            return [record(self.ceiling_pct, False, "deadband")]
        qos = self.base_qos
        vrate_min = min(qos.vrate_min_pct, value)
        for device_id in self.device_ids:
            self.hierarchy.root.write(
                "io.cost.qos",
                f"{device_id} enable={int(qos.enable)} ctrl={qos.ctrl} "
                f"rpct={qos.rpct:g} rlat={qos.rlat_us:g} "
                f"wpct={qos.wpct:g} wlat={qos.wlat_us:g} "
                f"min={vrate_min:g} max={value:g}",
            )
        for throttle in self.throttles:
            throttle.refresh_qos()
        actuation = record(value, True, reason)
        self.ceiling_pct = value
        self.limiter.mark(self.sim.now)
        return [actuation]

    def counters(self) -> dict[str, float]:
        """Applied/skipped plus the ceiling's final percentage."""
        row = super().counters()
        row["final_ceiling_pct"] = self.ceiling_pct
        return row


class QdLimitController(Controller):
    """Adaptive io.latency target: QD-limit adaptation by proxy.

    blk-iolatency halves unprotected groups' queue depths only when the
    protected group misses the *knob file's* target; this controller
    tightens that target under SLO drift (making the kernel's halving
    engage earlier and cut deeper) and relaxes it back once the SLO
    holds, then pokes the controller to re-read the cached target.
    """

    name = "qdlimit"

    def __init__(
        self,
        sim,
        hierarchy: CgroupHierarchy,
        throttles: list,
        device_ids: list[str],
        group: str,
        params: QdLimitCtlParams,
        initial_target_us: float,
        period_us: float,
    ):
        """``initial_target_us`` is the knob's static (dilated) target."""
        if not math.isfinite(initial_target_us) or initial_target_us <= 0:
            raise ValueError("initial io.latency target must be positive")
        super().__init__(sim, period_us)
        self.hierarchy = hierarchy
        self.throttles = throttles
        self.device_ids = device_ids
        self.group = group
        self.params = params
        self.base_target_us = initial_target_us
        self.target_us = initial_target_us
        self.limiter = RateLimiter(
            max_step_fraction=1.0, min_interval_us=params.min_interval_us
        )
        self._obs: Optional[ControlObservation] = None

    def observe(self, obs: Optional[ControlObservation]) -> None:
        """Store the window for the next ``actuate``."""
        self._obs = obs

    def actuate(self) -> list[Actuation]:
        """Tighten the target on drift, relax toward baseline when met."""
        obs = self._obs
        if obs is None:
            return []
        params = self.params
        floor = self.base_target_us * params.floor_fraction
        ceiling = self.base_target_us * params.ceiling_fraction
        record = lambda value, applied, reason: Actuation(  # noqa: E731
            t_us=self.sim.now,
            controller=self.name,
            knob="io.latency",
            cgroup=self.group,
            previous=self.target_us,
            value=value,
            applied=applied,
            reason=reason,
        )
        if obs.score.needs_tightening:
            proposed = max(floor, self.target_us * params.tighten_factor)
            reason = "drift"
            if proposed >= self.target_us:
                return [record(self.target_us, False, "at-floor")]
        elif obs.score.meets_slo:
            proposed = min(ceiling, self.target_us * params.loosen_factor)
            reason = "recover"
            if proposed <= self.target_us:
                return [record(self.target_us, False, "at-ceiling")]
        else:
            return [record(self.target_us, False, "hold")]
        if not self.limiter.ready(self.sim.now):
            return [record(self.target_us, False, "min-interval")]
        value = self.limiter.clamp(self.target_us, proposed)
        group = self.hierarchy.find(self.group)
        for device_id in self.device_ids:
            group.write("io.latency", f"{device_id} target={value:g}")
        for throttle in self.throttles:
            throttle.refresh_targets()
        actuation = record(value, True, reason)
        self.target_us = value
        self.limiter.mark(self.sim.now)
        return [actuation]

    def counters(self) -> dict[str, float]:
        """Applied/skipped plus the target's final (dilated) value."""
        row = super().counters()
        row["final_target_us"] = self.target_us
        return row
