"""Unit tests for the discrete-event engine.

Every test runs against both cores (legacy single-pop heap and the
batched slot-wheel) via the ``make_sim`` fixture: the engine contract is
identical by design, and ``tests/differential/`` extends that claim to
whole scenarios.
"""

import pytest

from repro.sim.engine import EngineConfig, SimulationError, Simulator

CONFIGS = {
    "legacy": EngineConfig(batching=False),
    "batched": EngineConfig(),
    # A deliberately tiny wheel: events constantly cross the horizon into
    # the overflow heap and migrate back, exercising the rotation paths.
    "batched-tiny-wheel": EngineConfig(wheel_slots=4, wheel_width_us=2.5),
}


@pytest.fixture(params=sorted(CONFIGS), name="make_sim")
def _make_sim(request):
    config = CONFIGS[request.param]
    return lambda: Simulator(config)


class TestEngineSelection:
    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv("ISOLBENCH_ENGINE", raising=False)
        assert Simulator().mode == "batched"

    def test_env_selects_legacy(self, monkeypatch):
        monkeypatch.setenv("ISOLBENCH_ENGINE", "legacy")
        assert Simulator().mode == "legacy"

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("ISOLBENCH_ENGINE", "legacy")
        assert Simulator(EngineConfig(batching=True)).mode == "batched"

    def test_both_cores_are_simulators(self):
        assert isinstance(Simulator(EngineConfig(batching=False)), Simulator)
        assert isinstance(Simulator(EngineConfig(batching=True)), Simulator)

    def test_bad_wheel_geometry_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(EngineConfig(wheel_slots=6))
        with pytest.raises(SimulationError):
            Simulator(EngineConfig(wheel_width_us=0.0))


class TestScheduling:
    def test_clock_starts_at_zero(self, make_sim):
        assert make_sim().now == 0.0

    def test_event_fires_at_scheduled_time(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]

    def test_events_fire_in_time_order(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule(30.0, lambda: seen.append("c"))
        sim.schedule(10.0, lambda: seen.append("a"))
        sim.schedule(20.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_fire_in_fifo_order(self, make_sim):
        sim = make_sim()
        seen = []
        for tag in ("first", "second", "third"):
            sim.schedule(5.0, lambda t=tag: seen.append(t))
        sim.run()
        assert seen == ["first", "second", "third"]

    def test_negative_delay_rejected(self, make_sim):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_zero_delay_allowed(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule(0.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.0]

    def test_schedule_at_absolute_time(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule_at(42.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42.0]

    def test_nested_scheduling_from_callback(self, make_sim):
        sim = make_sim()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(5.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(10.0, outer)
        sim.run()
        assert seen == [("outer", 10.0), ("inner", 15.0)]

    def test_same_timestamp_event_scheduled_mid_batch_fires_last(self, make_sim):
        # A zero-delay event scheduled from inside a same-timestamp batch
        # gets a larger seq and must still fire within that timestamp,
        # after the already-scheduled members.
        sim = make_sim()
        seen = []
        sim.schedule(5.0, lambda: (seen.append("a"), sim.schedule(0.0, lambda: seen.append("d"))))
        sim.schedule(5.0, lambda: seen.append("b"))
        sim.schedule(5.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c", "d"]

    def test_far_future_events_cross_the_wheel_horizon(self, make_sim):
        # Delays far beyond wheel_slots * wheel_width_us must still fire
        # in order (overflow heap + migration on rotation).
        sim = make_sim()
        seen = []
        for delay in (900000.0, 5.0, 90000.0, 900000.0, 1.0):
            sim.schedule(delay, lambda d=delay: seen.append(d))
        sim.run()
        assert seen == [1.0, 5.0, 90000.0, 900000.0, 900000.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, make_sim):
        sim = make_sim()
        seen = []
        event = sim.schedule(10.0, lambda: seen.append("x"))
        sim.cancel(event)
        sim.run()
        assert seen == []

    def test_cancel_after_fire_is_noop(self, make_sim):
        sim = make_sim()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("x"))
        sim.run()
        sim.cancel(event)
        assert seen == ["x"]

    def test_cancelled_events_not_counted_pending(self, make_sim):
        sim = make_sim()
        event = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        sim.cancel(event)
        assert sim.pending_events() == 1

    def test_event_active_tracks_lifecycle(self, make_sim):
        sim = make_sim()
        fired = sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(10.0, lambda: None)
        pending = sim.schedule(20.0, lambda: None)
        assert sim.event_active(fired) and sim.event_active(cancelled)
        sim.cancel(cancelled)
        sim.run_until(5.0)
        assert not sim.event_active(fired)
        assert not sim.event_active(cancelled)
        assert sim.event_active(pending)


class TestRunUntil:
    def test_run_until_stops_future_events(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule(10.0, lambda: seen.append("early"))
        sim.schedule(100.0, lambda: seen.append("late"))
        sim.run_until(50.0)
        assert seen == ["early"]
        assert sim.now == 50.0

    def test_run_until_includes_boundary_events(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule(50.0, lambda: seen.append("edge"))
        sim.run_until(50.0)
        assert seen == ["edge"]

    def test_run_until_advances_clock_with_no_events(self, make_sim):
        sim = make_sim()
        sim.run_until(123.0)
        assert sim.now == 123.0

    def test_run_until_can_be_resumed(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule(10.0, lambda: seen.append("a"))
        sim.schedule(60.0, lambda: seen.append("b"))
        sim.run_until(30.0)
        assert seen == ["a"]
        sim.run_until(100.0)
        assert seen == ["a", "b"]

    def test_schedule_after_run_until_lands_in_the_future(self, make_sim):
        # The wheel head may have rotated past the stop time; a fresh
        # schedule must still fire at now + delay.
        sim = make_sim()
        seen = []
        sim.schedule(500.0, lambda: seen.append("far"))
        sim.run_until(100.0)
        sim.schedule(1.0, lambda: seen.append("near"))
        sim.run()
        assert seen == ["near", "far"]

    def test_events_processed_counter(self, make_sim):
        sim = make_sim()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestPendingEvents:
    """The live count must track schedule/cancel/fire without heap scans."""

    def test_counts_scheduled_events(self, make_sim):
        sim = make_sim()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.pending_events() == 5

    def test_fired_events_leave_the_count(self, make_sim):
        sim = make_sim()
        sim.schedule(10.0, lambda: None)
        sim.schedule(50.0, lambda: None)
        sim.run_until(20.0)
        assert sim.pending_events() == 1
        sim.run()
        assert sim.pending_events() == 0

    def test_double_cancel_decrements_once(self, make_sim):
        sim = make_sim()
        event = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending_events() == 1

    def test_cancel_after_fire_does_not_underflow(self, make_sim):
        sim = make_sim()
        event = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        sim.run_until(15.0)
        sim.cancel(event)
        assert sim.pending_events() == 1

    def test_count_visible_from_inside_callbacks(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule(10.0, lambda: seen.append(sim.pending_events()))
        sim.schedule(20.0, lambda: None)
        sim.schedule(30.0, lambda: None)
        sim.run()
        # While the first callback runs, only the two later events remain.
        assert seen == [2]

    def test_matches_brute_force_under_churn(self, make_sim):
        sim = make_sim()
        events = []

        def spawn():
            events.append(sim.schedule(7.0, lambda: None))

        for i in range(50):
            events.append(sim.schedule(float(i % 7) + 1.0, spawn if i % 3 else (lambda: None)))
        for event in events[::4]:
            sim.cancel(event)
        sim.run_until(4.0)
        brute = sum(1 for _, _, active in sim.pending_entries() if active)
        assert sim.pending_events() == brute


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self, make_sim):
        def run_once():
            sim = make_sim()
            trace = []

            def tick(n):
                trace.append((n, sim.now))
                if n < 20:
                    sim.schedule(float(n % 3) + 0.5, lambda: tick(n + 1))

            sim.schedule(0.0, lambda: tick(0))
            sim.run()
            return trace

        assert run_once() == run_once()

    def test_cores_produce_identical_traces(self):
        def run_once(config):
            sim = Simulator(config)
            trace = []

            def tick(n):
                trace.append((n, sim.now, sim.events_processed, sim.pending_events()))
                if n < 200:
                    sim.schedule(float(n % 11) * 37.5, lambda: tick(n + 1))
                    if n % 4 == 0:
                        sim.schedule(float(n % 5), lambda: tick(n + 100000))

            sim.schedule(0.0, lambda: tick(0))
            sim.run_until(2500.0)
            return trace

        traces = [run_once(CONFIGS[name]) for name in sorted(CONFIGS)]
        assert traces[0] == traces[1] == traces[2]
