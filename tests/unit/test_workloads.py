"""Unit tests for job specs, the app driver, and arrival timelines."""

import math
import random

import pytest

from repro.iorequest import KIB, OpType, Pattern
from repro.sim.engine import Simulator
from repro.workloads.apps import batch_app, be_app, lc_app
from repro.workloads.generator import App
from repro.workloads.patterns import (
    churn_windows,
    diurnal_phases,
    flash_crowd_phases,
)
from repro.workloads.spec import (
    ActivityWindow,
    ArrivalPhase,
    CgroupAppGroup,
    JobSpec,
)


class TestActivityWindow:
    def test_valid(self):
        window = ActivityWindow(0.0, 100.0)
        assert window.stop_us == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            ActivityWindow(-1.0)

    def test_stop_before_start_rejected(self):
        with pytest.raises(ValueError):
            ActivityWindow(100.0, 50.0)

    def test_open_ended_by_default(self):
        import math

        assert math.isinf(ActivityWindow(0.0).stop_us)


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec(name="j", cgroup_path="/g")
        assert spec.size == 4 * KIB
        assert spec.is_read_only
        assert spec.active_at(1e9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"size": 0},
            {"read_fraction": 1.5},
            {"read_fraction": -0.1},
            {"queue_depth": 0},
            {"rate_limit_bps": 0.0},
            {"windows": ()},
        ],
    )
    def test_validation(self, kwargs):
        params = dict(name="j", cgroup_path="/g")
        params.update(kwargs)
        with pytest.raises(ValueError):
            JobSpec(**params)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="j",
                cgroup_path="/g",
                windows=(ActivityWindow(0.0, 100.0), ActivityWindow(50.0, 200.0)),
            )

    def test_active_at_respects_windows(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            windows=(ActivityWindow(10.0, 20.0), ActivityWindow(30.0, 40.0)),
        )
        assert not spec.active_at(5.0)
        assert spec.active_at(15.0)
        assert not spec.active_at(25.0)
        assert spec.active_at(35.0)
        assert not spec.active_at(45.0)


class TestAppPresets:
    def test_lc_app_shape(self):
        spec = lc_app("l", "/g")
        assert spec.queue_depth == 1
        assert spec.size == 4 * KIB
        assert spec.app_class == "lc"

    def test_batch_app_shape(self):
        spec = batch_app("b", "/g")
        assert spec.queue_depth == 256
        assert spec.app_class == "batch"

    def test_be_app_write_variant(self):
        spec = be_app("w", "/g", read_fraction=0.0)
        assert not spec.is_read_only
        assert spec.app_class == "be"


class TestCgroupAppGroup:
    def test_mismatched_spec_rejected(self):
        with pytest.raises(ValueError):
            CgroupAppGroup("/g", (JobSpec(name="j", cgroup_path="/other"),))


class TestAppDriver:
    @staticmethod
    def run_app(spec, duration_us, complete_after_us=10.0):
        """Drive an app against an instant-completion fake device."""
        sim = Simulator()
        submitted = []

        app_holder = []

        def submit(req):
            submitted.append((sim.now, req))
            sim.schedule(complete_after_us, lambda: app_holder[0].on_complete(req))

        app = App(sim, spec, submit, random.Random(0))
        app_holder.append(app)
        app.start()
        sim.run_until(duration_us)
        return submitted, app

    def test_keeps_queue_depth_outstanding(self):
        spec = JobSpec(name="j", cgroup_path="/g", queue_depth=4)
        submitted, app = self.run_app(spec, duration_us=5.0)
        assert len(submitted) == 4  # initial fill, none completed yet

    def test_closed_loop_reissues_on_completion(self):
        spec = JobSpec(name="j", cgroup_path="/g", queue_depth=1)
        submitted, _ = self.run_app(spec, duration_us=100.0)
        # One completion every 10us -> ~10 sequential requests.
        assert 9 <= len(submitted) <= 11

    def test_stops_issuing_after_window(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            queue_depth=1,
            windows=(ActivityWindow(0.0, 50.0),),
        )
        submitted, app = self.run_app(spec, duration_us=500.0)
        assert all(t < 50.0 for t, _ in submitted)
        assert app.outstanding == 0

    def test_starts_at_window_start(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            queue_depth=1,
            windows=(ActivityWindow(200.0, 400.0),),
        )
        submitted, _ = self.run_app(spec, duration_us=300.0)
        assert submitted and submitted[0][0] == 200.0

    def test_read_fraction_mixes_ops(self):
        spec = JobSpec(name="j", cgroup_path="/g", queue_depth=1, read_fraction=0.5)
        submitted, _ = self.run_app(spec, duration_us=10_000.0)
        ops = {req.op for _, req in submitted}
        assert ops == {OpType.READ, OpType.WRITE}

    def test_read_only_never_writes(self):
        spec = JobSpec(name="j", cgroup_path="/g", queue_depth=2, read_fraction=1.0)
        submitted, _ = self.run_app(spec, duration_us=1_000.0)
        assert all(req.op == OpType.READ for _, req in submitted)

    def test_rate_limit_bounds_issue_rate(self):
        # 4 KiB at 4 MiB/s -> ~1 request per ms.
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            queue_depth=8,
            rate_limit_bps=4.0 * 1024 * 1024,
        )
        submitted, _ = self.run_app(spec, duration_us=20_000.0, complete_after_us=1.0)
        assert len(submitted) <= 25  # ~20 expected

    def test_phased_single_phase_reproduces_constant_rate(self):
        """The compatibility bar for the arrival_phases refactor: one
        open-ended phase must draw the identical arrival sequence as the
        constant-rate open-loop path (same RNG stream, same chaining)."""
        constant = JobSpec(name="j", cgroup_path="/g", arrival_rate_iops=10_000.0)
        phased = JobSpec(
            name="j",
            cgroup_path="/g",
            arrival_phases=(ArrivalPhase(0.0, math.inf, 10_000.0),),
        )
        a, _ = self.run_app(constant, duration_us=20_000.0)
        b, _ = self.run_app(phased, duration_us=20_000.0)
        assert [t for t, _ in a] == [t for t, _ in b]
        assert len(a) > 100  # a real sample, not a vacuous match

    def test_phase_boundary_changes_the_rate(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            arrival_phases=(
                ArrivalPhase(0.0, 50_000.0, 1_000.0),
                ArrivalPhase(50_000.0, 100_000.0, 10_000.0),
            ),
        )
        submitted, _ = self.run_app(spec, duration_us=100_000.0)
        before = sum(1 for t, _ in submitted if t < 50_000.0)
        after = len(submitted) - before
        # ~50 arrivals before the boundary, ~500 after.
        assert before < 110 and after > 300

    def test_no_arrivals_in_a_phase_gap(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            arrival_phases=(
                ArrivalPhase(0.0, 30_000.0, 5_000.0),
                ArrivalPhase(60_000.0, 90_000.0, 5_000.0),
            ),
        )
        submitted, _ = self.run_app(spec, duration_us=90_000.0)
        assert submitted
        assert not any(30_000.0 <= t < 60_000.0 for t, _ in submitted)

    def test_request_metadata(self):
        spec = JobSpec(name="j", cgroup_path="/g", pattern=Pattern.SEQUENTIAL)
        sim = Simulator()
        seen = []
        app = App(sim, spec, seen.append, random.Random(0), device_index=3, prio_class=2)
        app.start()
        sim.run_until(1.0)
        req = seen[0]
        assert req.app_name == "j"
        assert req.cgroup_path == "/g"
        assert req.device_index == 3
        assert req.prio_class == 2
        assert req.pattern == Pattern.SEQUENTIAL


class TestArrivalPhase:
    def test_valid(self):
        phase = ArrivalPhase(0.0, 100.0, 500.0)
        assert phase.rate_iops == 500.0

    def test_open_ended_stop_allowed(self):
        assert math.isinf(ArrivalPhase(0.0, math.inf, 500.0).stop_us)

    @pytest.mark.parametrize(
        "args",
        [
            (-1.0, 100.0, 500.0),  # negative start
            (100.0, 50.0, 500.0),  # stop before start
            (0.0, 0.0, 500.0),  # empty interval
            (0.0, 100.0, 0.0),  # zero rate
            (0.0, 100.0, -5.0),  # negative rate
        ],
    )
    def test_validation(self, args):
        with pytest.raises(ValueError):
            ArrivalPhase(*args)


class TestPhasedJobSpec:
    def phases(self):
        return (ArrivalPhase(0.0, 50.0, 100.0), ArrivalPhase(50.0, 100.0, 200.0))

    def test_phases_and_constant_rate_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="j",
                cgroup_path="/g",
                arrival_rate_iops=100.0,
                arrival_phases=self.phases(),
            )

    def test_phased_job_cannot_rate_limit(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="j",
                cgroup_path="/g",
                rate_limit_bps=1e6,
                arrival_phases=self.phases(),
            )

    def test_phased_job_cannot_macro_tick(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="j",
                cgroup_path="/g",
                macro_tick_us=100.0,
                arrival_phases=self.phases(),
            )

    def test_empty_phase_tuple_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(name="j", cgroup_path="/g", arrival_phases=())

    def test_overlapping_phases_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="j",
                cgroup_path="/g",
                arrival_phases=(
                    ArrivalPhase(0.0, 60.0, 100.0),
                    ArrivalPhase(50.0, 100.0, 100.0),
                ),
            )

    def test_unsorted_phases_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="j",
                cgroup_path="/g",
                arrival_phases=(
                    ArrivalPhase(50.0, 100.0, 100.0),
                    ArrivalPhase(0.0, 50.0, 100.0),
                ),
            )

    def test_gap_between_phases_allowed(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            arrival_phases=(
                ArrivalPhase(0.0, 40.0, 100.0),
                ArrivalPhase(60.0, 100.0, 100.0),
            ),
        )
        assert len(spec.arrival_phases) == 2


class TestDiurnalPhases:
    def test_shape_and_contiguity(self):
        phases = diurnal_phases(100.0, 500.0, 80_000.0, steps=8)
        assert len(phases) == 8
        assert phases[0].start_us == 0.0
        assert phases[-1].stop_us == 80_000.0
        for earlier, later in zip(phases, phases[1:]):
            assert later.start_us == earlier.stop_us

    def test_rates_bounded_by_base_and_peak(self):
        phases = diurnal_phases(100.0, 500.0, 80_000.0, steps=16)
        rates = [p.rate_iops for p in phases]
        assert all(100.0 <= r <= 500.0 for r in rates)
        # Starts/ends near base, peaks mid-period.
        assert rates[0] < rates[len(rates) // 2]
        assert max(rates) == pytest.approx(500.0, rel=0.05)

    def test_raised_cosine_is_symmetric(self):
        phases = diurnal_phases(100.0, 500.0, 80_000.0, steps=8)
        rates = [p.rate_iops for p in phases]
        for left, right in zip(rates, reversed(rates)):
            assert left == pytest.approx(right)

    def test_cycles_repeat_the_ramp(self):
        one = diurnal_phases(100.0, 500.0, 40_000.0, steps=4, cycles=1)
        two = diurnal_phases(100.0, 500.0, 40_000.0, steps=4, cycles=2)
        assert len(two) == 2 * len(one)
        assert [p.rate_iops for p in two[:4]] == [p.rate_iops for p in two[4:]]
        assert two[4].start_us == 40_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_phases(500.0, 100.0, 80_000.0)  # peak below base
        with pytest.raises(ValueError):
            diurnal_phases(100.0, 500.0, 80_000.0, steps=1)
        with pytest.raises(ValueError):
            diurnal_phases(100.0, 500.0, 80_000.0, cycles=0)


class TestFlashCrowdPhases:
    def test_before_during_after(self):
        phases = flash_crowd_phases(100.0, 1_000.0, 30_000.0, 20_000.0, 100_000.0)
        assert [p.rate_iops for p in phases] == [100.0, 1_000.0, 100.0]
        assert phases[0].start_us == 0.0
        assert phases[1].start_us == 30_000.0
        assert phases[1].stop_us == 50_000.0
        assert phases[2].stop_us == 100_000.0
        for earlier, later in zip(phases, phases[1:]):
            assert later.start_us == earlier.stop_us

    def test_open_ended_tail_by_default(self):
        phases = flash_crowd_phases(100.0, 1_000.0, 30_000.0, 20_000.0)
        assert math.isinf(phases[-1].stop_us)

    def test_crowd_must_land_inside_the_run(self):
        with pytest.raises(ValueError):
            flash_crowd_phases(100.0, 1_000.0, 0.0, 20_000.0, 100_000.0)
        with pytest.raises(ValueError):
            flash_crowd_phases(100.0, 1_000.0, 90_000.0, 20_000.0, 100_000.0)


class TestChurnWindows:
    def test_staggered_slots(self):
        duration = 100_000.0
        starts = []
        for i in range(5):
            (window,) = churn_windows(i, 5, duration, overlap=2.0)
            starts.append(window.start_us)
            assert window.stop_us <= duration
        assert starts == [0.0, 20_000.0, 40_000.0, 60_000.0, 80_000.0]

    def test_overlap_keeps_roughly_that_many_tenants_active(self):
        duration = 100_000.0
        windows = [churn_windows(i, 5, duration, overlap=2.0)[0] for i in range(5)]
        mid = duration / 2
        active = sum(1 for w in windows if w.start_us <= mid < w.stop_us)
        assert active == 2

    def test_last_tenant_clamped_to_run_end(self):
        (window,) = churn_windows(4, 5, 100_000.0, overlap=3.0)
        assert window.stop_us == 100_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            churn_windows(5, 5, 100_000.0)
        with pytest.raises(ValueError):
            churn_windows(0, 5, 0.0)
        with pytest.raises(ValueError):
            churn_windows(0, 5, 100_000.0, overlap=0.0)
