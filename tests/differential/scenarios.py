"""Mini D1-D6 scenarios for the engine differential suite.

One representative scenario per desideratum, each cheap enough that the
whole suite runs both engine cores in seconds. The shapes deliberately
cover every scheduler/throttle path (io.cost, BFQ, io.latency, io.max,
MQ-DL + faults, tuned-QoS io.cost), both workload drive modes
(closed-loop refill and open-loop Poisson arrivals, including the
macro-tick batching mode), and the profiled event loop.

Module-level so the 2-worker spawn test can pickle builder references.
"""

from __future__ import annotations

from repro.core.config import (
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
)
from repro.core.knob_catalog import (
    fairness_knobs,
    iomax_limit_for_share,
    overhead_knobs,
)
from repro.core.scenarios import (
    BE_GROUP,
    PRIORITY_GROUP,
    batch_scaling_specs,
    burst_specs,
    fairness_specs,
    robustness_specs,
    tradeoff_specs,
    uniform_fairness_groups,
)
from repro.faults.presets import gc_storm_plan
from repro.prof.config import ProfConfig
from repro.ssd.presets import samsung_980pro_like
from repro.workloads.spec import JobSpec

#: Differential minis run heavily time-dilated: they only need coverage,
#: not statistics, so each runs ~10-40k events.
SCALE = 16.0
_SEED = 7


def d1_mini() -> Scenario:
    """D1 overhead shape: saturating batch apps, io.cost not controlling.

    The self-profiler is on, so this mini drives ``run_until_profiled``
    through both cores.
    """
    ssd = samsung_980pro_like()
    apps = batch_scaling_specs(2, queue_depth=32)
    knob = overhead_knobs(ssd.scaled(SCALE), [spec.cgroup_path for spec in apps])[
        "io.cost"
    ]
    return Scenario(
        name="diff-d1-overhead",
        knob=knob,
        apps=apps,
        ssd_model=ssd,
        duration_s=0.15,
        warmup_s=0.05,
        seed=_SEED,
        device_scale=SCALE,
        prof=ProfConfig(),
    )


def d2_mini() -> Scenario:
    """D2 fairness shape: two uniform cgroups under BFQ."""
    ssd = samsung_980pro_like()
    groups = uniform_fairness_groups(2)
    knob = fairness_knobs(
        groups, ssd.scaled(SCALE), weighted=False, latency_scale=SCALE
    )["bfq"]
    return Scenario(
        name="diff-d2-fairness",
        knob=knob,
        apps=fairness_specs(groups, apps_per_group=2, queue_depth=32),
        ssd_model=ssd,
        duration_s=0.15,
        warmup_s=0.05,
        seed=_SEED,
        device_scale=SCALE,
    )


def d3_mini() -> Scenario:
    """D3 trade-off shape: LC app protected by io.latency targets."""
    return Scenario(
        name="diff-d3-tradeoff",
        knob=IoLatencyKnob(targets_us={PRIORITY_GROUP: 200.0 * SCALE}),
        apps=tradeoff_specs("lc", n_be_apps=2, be_queue_depth=32),
        ssd_model=samsung_980pro_like(),
        duration_s=0.15,
        warmup_s=0.05,
        seed=_SEED,
        device_scale=SCALE,
    )


def d4_mini() -> Scenario:
    """D4 burst shape: mid-run LC burst plus an open-loop Poisson app.

    The open-loop app exercises the per-arrival callback chain
    (``App._arrive``), which only this desideratum uses.
    """
    ssd = samsung_980pro_like()
    apps = burst_specs(
        "lc", burst_start_us=50_000.0 * SCALE, be_queue_depth=32
    ) + [
        JobSpec(
            name="openloop",
            cgroup_path=BE_GROUP,
            arrival_rate_iops=2_000.0 / SCALE,
        )
    ]
    limit = iomax_limit_for_share(0.5, ssd.scaled(SCALE))
    return Scenario(
        name="diff-d4-burst",
        knob=IoMaxKnob(limits={BE_GROUP: {"rbps": limit}}),
        apps=apps,
        ssd_model=ssd,
        duration_s=0.15,
        warmup_s=0.05,
        seed=_SEED,
        device_scale=SCALE,
    )


def d4_macro_mini() -> Scenario:
    """D4 burst shape with macro-tick arrival batching enabled.

    Same scenario as :func:`d4_mini` but the open-loop app batches its
    arrivals (``macro_tick_us``): the differential suite proves the
    macro-tick path is itself engine-independent.
    """
    base = d4_mini()
    apps = [
        spec
        if spec.arrival_rate_iops is None
        else JobSpec(
            name=spec.name,
            cgroup_path=spec.cgroup_path,
            arrival_rate_iops=spec.arrival_rate_iops,
            macro_tick_us=500.0 * SCALE,
        )
        for spec in base.apps
    ]
    return Scenario(
        name="diff-d4-macro",
        knob=base.knob,
        apps=apps,
        ssd_model=base.ssd_model,
        duration_s=0.15,
        warmup_s=0.05,
        seed=_SEED,
        device_scale=SCALE,
    )


def d5_mini() -> Scenario:
    """D5 robustness shape: LC vs BE under a GC storm, MQ-DL classes."""
    return Scenario(
        name="diff-d5-faulted",
        knob=MqDeadlineKnob(
            classes={PRIORITY_GROUP: "realtime", BE_GROUP: "idle"}
        ),
        apps=robustness_specs(be_queue_depth=16, n_be_apps=2),
        ssd_model=samsung_980pro_like(),
        duration_s=0.15,
        warmup_s=0.05,
        seed=_SEED,
        device_scale=SCALE,
        faults=gc_storm_plan(),
    )


def d6_mini() -> Scenario:
    """D6 autotune shape: a tuned-QoS io.cost knob on the D5 workload."""
    ssd = samsung_980pro_like()
    groups = uniform_fairness_groups(2)
    tuned = fairness_knobs(
        groups, ssd.scaled(SCALE), weighted=True, latency_scale=SCALE
    )["io.cost"]
    assert isinstance(tuned, IoCostKnob)
    return Scenario(
        name="diff-d6-autotuned",
        knob=tuned,
        apps=fairness_specs(groups, apps_per_group=1, queue_depth=32),
        ssd_model=ssd,
        duration_s=0.15,
        warmup_s=0.05,
        seed=_SEED,
        device_scale=SCALE,
    )


def d_none_mini() -> Scenario:
    """Control: no knob at all (the paper's None baseline)."""
    return Scenario(
        name="diff-none-baseline",
        knob=NoneKnob(),
        apps=batch_scaling_specs(1, queue_depth=16),
        ssd_model=samsung_980pro_like(),
        duration_s=0.15,
        warmup_s=0.05,
        seed=_SEED,
        device_scale=SCALE,
    )


#: Suite order: name -> zero-arg scenario builder.
MINI_BUILDERS = {
    "d1": d1_mini,
    "d2": d2_mini,
    "d3": d3_mini,
    "d4": d4_mini,
    "d4-macro": d4_macro_mini,
    "d5": d5_mini,
    "d6": d6_mini,
    "none": d_none_mini,
}
