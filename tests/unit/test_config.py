"""Unit tests for scenario/knob configuration."""

import math

import pytest

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.cgroups.knobs import IoCostQosParams, PrioClass
from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
    device_id_for_index,
)
from repro.iorequest import MIB
from repro.ssd.presets import samsung_980pro_like
from repro.workloads.apps import batch_app


def make_tree(paths):
    tree = CgroupHierarchy()
    for path in paths:
        tree.create(path, processes=True)
    return tree


class TestDeviceIds:
    def test_index_mapping(self):
        assert device_id_for_index(0) == "259:0"
        assert device_id_for_index(6) == "259:6"


class TestScenarioValidation:
    def base_kwargs(self, **overrides):
        kwargs = dict(
            name="s",
            knob=NoneKnob(),
            apps=[batch_app("a", "/t/a")],
        )
        kwargs.update(overrides)
        return kwargs

    def test_valid_scenario(self):
        scenario = Scenario(**self.base_kwargs())
        assert scenario.duration_us == 1e6
        assert scenario.device_ids() == ["259:0"]

    def test_needs_apps(self):
        with pytest.raises(ValueError):
            Scenario(**self.base_kwargs(apps=[]))

    def test_duplicate_app_names_rejected(self):
        with pytest.raises(ValueError):
            Scenario(
                **self.base_kwargs(
                    apps=[batch_app("a", "/t/a"), batch_app("a", "/t/b")]
                )
            )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_devices", 0),
            ("cores", 0),
            ("duration_s", 0.0),
            ("warmup_s", 2.0),  # beyond duration
            ("warmup_s", -0.1),
        ],
    )
    def test_numeric_validation(self, field, value):
        with pytest.raises(ValueError):
            Scenario(**self.base_kwargs(**{field: value}))

    def test_multi_device_ids(self):
        scenario = Scenario(**self.base_kwargs(num_devices=3))
        assert scenario.device_ids() == ["259:0", "259:1", "259:2"]


class TestKnobConfigure:
    def test_none_writes_nothing(self):
        tree = make_tree(["/t/a"])
        NoneKnob().configure(tree, ["259:0"])
        assert tree.find("/t/a").read_parsed("io.max") == {}

    def test_mq_deadline_sets_classes(self):
        tree = make_tree(["/t/a"])
        MqDeadlineKnob(classes={"/t/a": "idle"}).configure(tree, ["259:0"])
        assert tree.find("/t/a").prio_class() == PrioClass.IDLE

    def test_bfq_sets_weights(self):
        tree = make_tree(["/t/a"])
        BfqKnob(weights={"/t/a": 555}).configure(tree, ["259:0"])
        assert tree.find("/t/a").bfq_weight() == 555

    def test_iomax_writes_per_device(self):
        tree = make_tree(["/t/a"])
        IoMaxKnob(limits={"/t/a": {"rbps": 10 * MIB}}).configure(
            tree, ["259:0", "259:1"]
        )
        for device in ("259:0", "259:1"):
            limits = tree.find("/t/a").read_parsed("io.max", device)
            assert limits.rbps == 10 * MIB

    def test_iomax_renders_inf_as_max(self):
        tree = make_tree(["/t/a"])
        IoMaxKnob(limits={"/t/a": {"rbps": math.inf}}).configure(tree, ["259:0"])
        assert math.isinf(tree.find("/t/a").read_parsed("io.max", "259:0").rbps)

    def test_iolatency_writes_targets(self):
        tree = make_tree(["/t/a"])
        IoLatencyKnob(targets_us={"/t/a": 123.0}).configure(tree, ["259:0"])
        assert tree.find("/t/a").read_parsed("io.latency", "259:0") == 123.0

    def test_iocost_writes_root_qos_and_weights(self):
        tree = make_tree(["/t/a"])
        knob = IoCostKnob(
            weights={"/t/a": 777},
            qos=IoCostQosParams(enable=True, ctrl="user", rlat_us=100.0),
        )
        knob.configure(tree, ["259:0"])
        qos = tree.root.read_parsed("io.cost.qos", "259:0")
        assert qos.enable and qos.rlat_us == 100.0
        assert tree.find("/t/a").io_weight() == 777

    def test_iocost_resolves_model_from_device(self):
        knob = IoCostKnob()
        model = knob.resolve_model(samsung_980pro_like())
        assert model.rbps > 0
        assert model.wrandiops < model.rrandiops  # writes cost more

    def test_iocost_explicit_model_wins(self):
        from repro.cgroups.knobs import IoCostModelParams

        explicit = IoCostModelParams(ctrl="user", rbps=1.0, rrandiops=1.0)
        knob = IoCostKnob(model=explicit)
        assert knob.resolve_model(samsung_980pro_like()) is explicit

    def test_labels(self):
        assert NoneKnob().describe() == "none"
        assert "bfq" in BfqKnob().describe()
