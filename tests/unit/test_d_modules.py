"""Unit tests for D-module helpers (sweep math, study containers)."""

import math

import pytest

from repro.core.d1_overhead import (
    BandwidthScalingPoint,
    LcOverheadPoint,
    LcOverheadStudy,
    peak_bandwidth,
)
from repro.core.d3_tradeoffs import _latency_target_range, _log_spaced, _spaced
from repro.core.d4_bursts import BurstResponse
from repro.ssd.presets import samsung_980pro_like


class TestLcStudyContainer:
    @staticmethod
    def point(knob, n_apps, p99=100.0, util=0.5):
        return LcOverheadPoint(
            knob=knob,
            n_apps=n_apps,
            p99_us=p99,
            p50_us=p99 * 0.8,
            mean_us=p99 * 0.8,
            cpu_utilization=util,
            ctx_switches_per_io=1.0,
            cycles_per_io=20_000.0,
            total_iops=10_000.0,
        )

    def test_lookup(self):
        study = LcOverheadStudy(points=[self.point("none", 1), self.point("bfq", 1, 120.0)])
        assert study.p99("bfq", 1) == 120.0
        assert study.utilization("none", 1) == 0.5

    def test_missing_point_raises(self):
        study = LcOverheadStudy()
        with pytest.raises(KeyError):
            study.p99("none", 1)
        with pytest.raises(KeyError):
            study.utilization("none", 1)


class TestPeakBandwidth:
    def test_max_over_app_counts(self):
        points = [
            BandwidthScalingPoint("none", 1, 1, 1.0, 0.1),
            BandwidthScalingPoint("none", 8, 1, 2.5, 0.3),
            BandwidthScalingPoint("none", 17, 1, 2.4, 0.4),
        ]
        assert peak_bandwidth(points, "none", 1) == 2.5

    def test_missing_combination_raises(self):
        with pytest.raises(KeyError):
            peak_bandwidth([], "none", 1)


class TestSweepSpacing:
    def test_spaced_endpoints(self):
        values = _spaced(0.0, 10.0, 5)
        assert values[0] == 0.0
        assert values[-1] == 10.0
        assert len(values) == 5

    def test_spaced_single_point(self):
        assert _spaced(0.0, 10.0, 1) == [10.0]

    def test_log_spaced_is_geometric(self):
        values = _log_spaced(1.0, 100.0, 3)
        assert values == pytest.approx([1.0, 10.0, 100.0])

    def test_log_spaced_validates(self):
        with pytest.raises(ValueError):
            _log_spaced(0.0, 10.0, 3)
        with pytest.raises(ValueError):
            _log_spaced(10.0, 1.0, 3)


class TestLatencyTargetRange:
    def test_uses_baseline_when_available(self):
        ssd = samsung_980pro_like()
        lo, hi = _latency_target_range("lc", ssd, baseline_p99_us=1000.0)
        # Floor sits just below the isolated latency (persistent-violation
        # regime at the tight end of the sweep).
        assert lo == pytest.approx(ssd.read_fixed_us * 0.9)
        assert hi == pytest.approx(1200.0)

    def test_falls_back_to_paper_range(self):
        ssd = samsung_980pro_like()
        lo, hi = _latency_target_range("lc", ssd, baseline_p99_us=None)
        assert lo < hi
        assert hi == 1200.0


class TestBurstResponse:
    def test_reached_property(self):
        assert BurstResponse("io.cost", "batch", 50.0, 100.0, 50.0).reached
        assert not BurstResponse("io.latency", "batch", None, math.inf, 50.0).reached
