"""Unit tests: corpus loading is defensive, deterministic, and counted.

The cache directory is shared, long-lived state, so the loader must
survive anything it finds there: truncated gzip, pickle garbage,
pre-v4 schema entries, and entries written before scenarios were
stored. Each is counted and skipped, never fatal -- and when the
survivors are too few, ``--surrogate=auto`` falls back to pure search
with an explicit notice instead of fitting on noise.
"""

import gzip
import pickle
from types import SimpleNamespace

import pytest

from repro.core.config import NoneKnob, Scenario
from repro.core.d6_autotune import mini_settings, resolve_surrogate_model
from repro.exec.cache import ResultCache
from repro.exec.summary import run_scenario_summary
from repro.surrogate.corpus import (
    MIN_CORPUS_ROWS,
    corpus_from_pairs,
    holdout_split,
    load_corpus,
    read_entry,
)
from repro.surrogate.features import scenario_cgroups
from repro.workloads.spec import JobSpec


@pytest.fixture(scope="module")
def pair():
    """One real (scenario, summary) pair from a tiny simulated run."""
    scenario = Scenario(
        name="corpus-test",
        knob=NoneKnob(),
        apps=[
            JobSpec(name="prio", cgroup_path="/t/prio", queue_depth=4, app_class="lc"),
            JobSpec(name="be", cgroup_path="/t/be", queue_depth=8),
        ],
        duration_s=0.05,
        warmup_s=0.01,
        device_scale=16.0,
    )
    return scenario, run_scenario_summary(scenario)


def seed_cache(tmp_path, pair, n: int = 3) -> ResultCache:
    cache = ResultCache(tmp_path / "cache")
    scenario, summary = pair
    for i in range(n):
        cache.put(f"{i:064x}", summary, scenario=scenario)
    return cache


class TestLoading:
    def test_loads_rows_per_cgroup(self, tmp_path, pair):
        cache = seed_cache(tmp_path, pair, n=3)
        corpus = load_corpus(cache.root)
        groups = scenario_cgroups(pair[0])
        assert corpus.stats.entries_seen == 3
        assert corpus.stats.entries_loaded == 3
        assert corpus.stats.skipped == 0
        assert corpus.n_rows == 3 * len(groups)
        assert [row.cgroup for row in corpus.rows[: len(groups)]] == groups

    def test_missing_directory_is_empty_not_fatal(self, tmp_path):
        corpus = load_corpus(tmp_path / "nope")
        assert corpus.n_rows == 0
        assert corpus.stats.entries_seen == 0

    def test_deterministic_digest(self, tmp_path, pair):
        cache = seed_cache(tmp_path, pair)
        assert load_corpus(cache.root).digest() == load_corpus(cache.root).digest()


class TestDefensiveSkips:
    def test_corrupt_entry_counted_not_fatal(self, tmp_path, pair):
        cache = seed_cache(tmp_path, pair, n=2)
        good = cache.entries()[0]
        truncated = good.parent / ("0" * 63 + "f.pkl.gz")
        truncated.write_bytes(good.read_bytes()[:40])
        garbage = good.parent / ("0" * 63 + "e.pkl.gz")
        with gzip.open(garbage, "wb") as fh:
            fh.write(b"not a pickle at all")
        corpus = load_corpus(cache.root)
        assert corpus.stats.skipped_corrupt == 2
        assert corpus.stats.entries_loaded == 2
        assert corpus.n_rows == 2 * len(scenario_cgroups(pair[0]))

    def test_old_schema_entry_skipped(self, tmp_path, pair):
        cache = seed_cache(tmp_path, pair, n=1)
        _, summary = pair
        stale = cache.entries()[0].parent / ("0" * 63 + "d.pkl.gz")
        with gzip.open(stale, "wb") as fh:
            pickle.dump({"schema_version": 3, "summary": summary}, fh)
        corpus = load_corpus(cache.root)
        assert corpus.stats.skipped_schema == 1
        assert corpus.stats.entries_loaded == 1

    def test_pre_scenario_entry_skipped(self, tmp_path, pair):
        scenario, summary = pair
        cache = ResultCache(tmp_path / "cache")
        cache.put("0" * 64, summary)  # scenario not stored (old writer)
        cache.put("1" * 64, summary, scenario=scenario)
        corpus = load_corpus(cache.root)
        assert corpus.stats.skipped_no_scenario == 1
        assert corpus.stats.entries_loaded == 1

    def test_read_entry_statuses(self, tmp_path, pair):
        scenario, summary = pair
        cache = seed_cache(tmp_path, pair, n=1)
        assert read_entry(cache.entries()[0])[0] == "ok"
        bad = tmp_path / "bad.pkl.gz"
        bad.write_bytes(b"\x1f\x8b garbage")
        assert read_entry(bad)[0] == "corrupt"

    def test_stats_render_mentions_skips(self, tmp_path, pair):
        cache = seed_cache(tmp_path, pair, n=1)
        (cache.entries()[0].parent / ("0" * 63 + "c.pkl.gz")).write_bytes(b"xx")
        text = str(load_corpus(cache.root).stats)
        assert "corrupt=1" in text


class TestSplitsAndPairs:
    def test_holdout_split_every_fourth(self, tmp_path, pair):
        cache = seed_cache(tmp_path, pair, n=6)
        corpus = load_corpus(cache.root)
        train, held = holdout_split(corpus, every=4)
        assert train.n_rows + held.n_rows == corpus.n_rows
        assert held.n_rows == corpus.n_rows // 4
        assert held.rows == corpus.rows[3::4]
        with pytest.raises(ValueError):
            holdout_split(corpus, every=1)

    def test_corpus_from_pairs_preserves_order(self, pair):
        scenario, summary = pair
        corpus = corpus_from_pairs([(scenario, summary), (scenario, summary)])
        assert corpus.stats.entries_loaded == 2
        assert corpus.n_rows == 2 * len(scenario_cgroups(scenario))


class TestAutoFallback:
    def test_small_corpus_falls_back_with_notice(self, tmp_path, pair):
        cache = seed_cache(tmp_path, pair, n=2)  # 4 rows << MIN_CORPUS_ROWS
        settings = mini_settings()
        settings.surrogate = "auto"
        executor = SimpleNamespace(cache=cache)
        model, notices = resolve_surrogate_model(settings, executor)
        assert model is None
        assert len(notices) == 1
        assert "falling back to pure simulator search" in notices[0]
        assert f"< {MIN_CORPUS_ROWS} required" in notices[0]

    def test_off_is_silent(self):
        settings = mini_settings()
        model, notices = resolve_surrogate_model(settings, None)
        assert model is None and notices == []

    def test_saved_model_path_loads(self, tmp_path, pair):
        import numpy as np

        from repro.surrogate.filter import fit_from_corpus
        from repro.surrogate.model import SurrogateConfig

        cache = seed_cache(tmp_path, pair, n=20)
        corpus = load_corpus(cache.root)
        model = fit_from_corpus(
            corpus, config=SurrogateConfig(n_members=2, n_rounds=5)
        )
        path = tmp_path / "model.json"
        model.save(path)
        settings = mini_settings()
        settings.surrogate = str(path)
        loaded, notices = resolve_surrogate_model(settings, None)
        assert notices == []
        assert loaded.n_rows == corpus.n_rows
        X, _ = corpus.matrices()
        np.testing.assert_array_equal(
            loaded.predict(X)[0], model.predict(X)[0]
        )
