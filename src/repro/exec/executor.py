"""Parallel, cached execution of scenario sweeps.

:class:`SweepExecutor` is the engine room of every paper artifact: the
Table I pipeline and the figure modules build lists of independent
:class:`~repro.core.config.Scenario` objects and hand them to
:meth:`SweepExecutor.run`, which

* consults the content-addressed :class:`~repro.exec.cache.ResultCache`
  (when attached) and only executes cache misses;
* collapses content-identical scenarios within one sweep (same cache
  key) onto a single execution, fanning the result back to every
  submission slot -- tuner search loops re-propose candidates freely;
* fans misses over a ``ProcessPoolExecutor`` (``max_workers`` defaults
  to ``os.cpu_count() - 1``; ``max_workers=1`` falls back to plain
  in-process execution -- the escape hatch for debugging and for
  pickling-hostile ad-hoc scenarios);
* returns results in **submission order** regardless of completion
  order;
* captures a failing scenario as a structured :class:`SweepError`
  (exception repr + full worker traceback text) without killing the
  rest of the sweep;
* reports ``k/n done, m cached, events/sec aggregate`` progress (plus
  worker-pool utilization: busy vs idle worker-seconds) after every
  completion through an optional callback.

Worker processes are started with the ``spawn`` method: children import
the package fresh, so the cross-process determinism contract ("a worker
produces the bit-identical summary an in-process run does") is tested
against the strictest possible process model, not fork's copied memory.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.core.config import Scenario
from repro.exec.cache import ResultCache
from repro.exec.cachekey import scenario_key
from repro.exec.summary import ScenarioSummary, run_scenario_summary


@dataclass(frozen=True)
class SweepError:
    """A scenario that raised, reported instead of propagated."""

    scenario_name: str
    error: str
    traceback_text: str

    def __str__(self) -> str:
        return f"scenario {self.scenario_name!r} failed: {self.error}"


class SweepFailure(RuntimeError):
    """Raised by :meth:`SweepExecutor.run_strict` on any SweepError."""

    def __init__(self, error: SweepError):
        super().__init__(f"{error}\n{error.traceback_text}")
        self.error = error


@dataclass(frozen=True)
class SweepProgress:
    """One ``k/n`` progress tick of a running sweep."""

    done: int
    total: int
    cached: int
    failed: int
    events_processed: int
    elapsed_seconds: float
    #: Submissions satisfied by an identical in-sweep scenario (same
    #: content-addressed key) instead of their own execution.
    deduped: int = 0
    #: Worker-side seconds spent executing scenarios so far this sweep.
    busy_seconds: float = 0.0
    #: Size of the worker pool the sweep is fanning over.
    workers: int = 1

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulator event throughput of the executed runs."""
        return (
            self.events_processed / self.elapsed_seconds
            if self.elapsed_seconds > 0
            else 0.0
        )

    @property
    def idle_seconds(self) -> float:
        """Worker-seconds spent idle (pool capacity minus busy time)."""
        return max(0.0, self.workers * self.elapsed_seconds - self.busy_seconds)

    @property
    def utilization(self) -> float:
        """Fraction of worker-pool capacity spent executing scenarios."""
        capacity = self.workers * self.elapsed_seconds
        return self.busy_seconds / capacity if capacity > 0 else 0.0

    def __str__(self) -> str:
        deduped = f", {self.deduped} deduped" if self.deduped else ""
        return (
            f"{self.done}/{self.total} done, {self.cached} cached{deduped}, "
            f"{self.events_per_sec:,.0f} events/sec aggregate, "
            f"util={self.utilization:.0%}"
        )


@dataclass
class ExecutorStats:
    """Cumulative counters over an executor's lifetime."""

    sweeps: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    deduped: int = 0
    #: Simulator events fired by executed (non-cached) scenario runs.
    events_processed: int = 0
    #: Wall-clock seconds spent inside :meth:`SweepExecutor.run`.
    elapsed_seconds: float = 0.0
    #: Worker-side seconds spent executing scenarios (busy time).
    busy_seconds: float = 0.0
    #: Size of the worker pool (per-sweep capacity multiplier).
    workers: int = 1
    #: Busy seconds per worker process, keyed by pid (the coordinating
    #: process itself for serial executors).
    worker_busy: dict[str, float] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        """Lifetime aggregate event throughput of executed runs."""
        return (
            self.events_processed / self.elapsed_seconds
            if self.elapsed_seconds > 0
            else 0.0
        )

    @property
    def idle_seconds(self) -> float:
        """Lifetime worker-seconds of idle pool capacity."""
        return max(0.0, self.workers * self.elapsed_seconds - self.busy_seconds)

    @property
    def utilization(self) -> float:
        """Lifetime fraction of worker-pool capacity spent executing."""
        capacity = self.workers * self.elapsed_seconds
        return self.busy_seconds / capacity if capacity > 0 else 0.0

    def to_json_dict(self) -> dict:
        """Plain-dict form for bench trajectory files."""
        return {
            "sweeps": self.sweeps,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "deduped": self.deduped,
            "events_processed": self.events_processed,
            "elapsed_seconds": self.elapsed_seconds,
            "busy_seconds": self.busy_seconds,
            "idle_seconds": self.idle_seconds,
            "utilization": self.utilization,
            "workers": self.workers,
            "worker_busy": dict(sorted(self.worker_busy.items())),
        }

    def __str__(self) -> str:
        return (
            f"{self.sweeps} sweep(s): {self.executed} executed, "
            f"{self.cached} cached, {self.deduped} deduped, {self.failed} failed; "
            f"{self.workers} worker(s): busy={self.busy_seconds:.1f}s "
            f"idle={self.idle_seconds:.1f}s ({self.utilization:.0%} util)"
        )


def _run_in_worker(scenario: Scenario):
    """Top-level worker entry point (must be picklable under spawn).

    Exceptions are caught *inside* the worker so their traceback text --
    which would otherwise die with the child process -- survives the
    trip back to the parent. The last payload element is worker-side
    accounting ``(pid, busy_seconds)`` feeding per-worker utilization.
    """
    started = time.perf_counter()
    try:
        summary = run_scenario_summary(scenario)
        return ("ok", summary, (os.getpid(), time.perf_counter() - started))
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        return (
            "err",
            repr(exc),
            traceback.format_exc(),
            (os.getpid(), time.perf_counter() - started),
        )


def _default_worker_count() -> int:
    """One worker per CPU, minus one for the coordinating process."""
    return max(1, (os.cpu_count() or 2) - 1)


class SweepExecutor:
    """Runs scenario lists in parallel with content-addressed caching."""

    def __init__(
        self,
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        progress: Optional[Callable[[SweepProgress], None]] = None,
    ):
        self.max_workers = max_workers if max_workers is not None else _default_worker_count()
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.cache = cache
        self.progress = progress
        self.stats = ExecutorStats(workers=self.max_workers)
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Lazily create the spawn-context pool (first parallel miss)."""
        if self._pool is None:
            import multiprocessing

            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, scenarios: Sequence[Scenario]
    ) -> list[Union[ScenarioSummary, SweepError]]:
        """Run a sweep; results come back in submission order.

        A failed scenario yields a :class:`SweepError` in its slot; the
        other scenarios are unaffected. Content-identical scenarios
        (same cache key) within one sweep execute once and the result is
        fanned back to every submission slot (``deduped`` in stats).
        Scenarios with tracing or profiling enabled bypass both the
        cache and the dedup (their :class:`~repro.obs.export.Trace` /
        :class:`~repro.prof.profiler.SimProfile` artifact lives on the
        Host and cannot be replayed from a shared summary).
        """
        total = len(scenarios)
        results: list[Union[ScenarioSummary, SweepError, None]] = [None] * total
        started = time.perf_counter()
        cached = failed = done = deduped = 0
        events = 0
        busy = 0.0
        busy_by_pid: dict[str, float] = {}

        def emit() -> None:
            if self.progress is not None:
                self.progress(
                    SweepProgress(
                        done=done,
                        total=total,
                        cached=cached,
                        failed=failed,
                        events_processed=events,
                        elapsed_seconds=time.perf_counter() - started,
                        deduped=deduped,
                        busy_seconds=busy,
                        workers=self.max_workers,
                    )
                )

        # Phase 1: cache lookups and in-sweep dedup. Content-identical
        # scenarios (same cache key -- search loops naturally re-propose
        # candidates) collapse onto one *primary* execution; the other
        # slots become followers and are filled from the primary's
        # result. Traced and profiled scenarios keep their own run
        # (their artifact is not shareable), so they neither dedupe nor
        # cache.
        keys: list[str | None] = [None] * total
        to_run: list[int] = []
        primary_of_key: dict[str, int] = {}
        followers: dict[int, list[int]] = {}
        for index, scenario in enumerate(scenarios):
            if scenario.trace is None and scenario.prof is None:
                key = scenario_key(scenario)
                keys[index] = key
                if self.cache is not None:
                    hit = self.cache.get(key)
                    if hit is not None:
                        results[index] = hit
                        cached += 1
                        done += 1
                        emit()
                        continue
                primary = primary_of_key.get(key)
                if primary is not None:
                    followers.setdefault(primary, []).append(index)
                    continue
                primary_of_key[key] = index
            to_run.append(index)

        # Phase 2: execute the misses.
        def note_busy(meta) -> None:
            nonlocal busy
            if meta is None:
                return
            pid, seconds = meta
            busy += seconds
            key = str(pid)
            busy_by_pid[key] = busy_by_pid.get(key, 0.0) + seconds

        def record(index: int, payload) -> None:
            nonlocal done, failed, events, deduped
            fanout = [index, *followers.get(index, ())]
            if payload[0] == "ok":
                _, summary, meta = payload
                note_busy(meta)
                events += summary.events_processed
                if self.cache is not None and keys[index] is not None:
                    self.cache.put(keys[index], summary, scenario=scenarios[index])
                for slot in fanout:
                    results[slot] = summary
            else:
                _, error, tb_text, meta = payload
                note_busy(meta)
                for slot in fanout:
                    results[slot] = SweepError(
                        scenario_name=scenarios[slot].name,
                        error=error,
                        traceback_text=tb_text,
                    )
                # Only the primary actually executed and failed; its
                # followers count as deduped (they hold the same error).
                failed += 1
            done += len(fanout)
            deduped += len(fanout) - 1
            emit()

        if self.max_workers == 1:
            for index in to_run:
                record(index, _run_in_worker(scenarios[index]))
        elif to_run:
            pool = self._ensure_pool()
            pending = {
                pool.submit(_run_in_worker, scenarios[index]): index
                for index in to_run
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = pending.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        # Pool-level failure (e.g. the scenario did not
                        # pickle, or the worker died): same structured
                        # reporting as an in-scenario exception.
                        payload = (
                            "err",
                            repr(exc),
                            "".join(
                                traceback.format_exception(
                                    type(exc), exc, exc.__traceback__
                                )
                            ),
                            None,  # no worker-side accounting survived
                        )
                    else:
                        payload = future.result()
                    record(index, payload)

        self.stats.sweeps += 1
        self.stats.cached += cached
        self.stats.failed += failed
        self.stats.deduped += deduped
        # executed + failed == primaries run; + cached + deduped == total.
        self.stats.executed += len(to_run) - failed
        self.stats.events_processed += events
        self.stats.elapsed_seconds += time.perf_counter() - started
        self.stats.busy_seconds += busy
        for pid, seconds in busy_by_pid.items():
            self.stats.worker_busy[pid] = self.stats.worker_busy.get(pid, 0.0) + seconds
        return results  # type: ignore[return-value]

    def run_strict(self, scenarios: Sequence[Scenario]) -> list[ScenarioSummary]:
        """Run a sweep; raise :class:`SweepFailure` on the first error.

        The semantics the figure/table modules want: any failed scenario
        is a bug in the experiment definition, not a partial result.
        """
        results = self.run(scenarios)
        for item in results:
            if isinstance(item, SweepError):
                raise SweepFailure(item)
        return results  # type: ignore[return-value]

    def run_one(self, scenario: Scenario) -> ScenarioSummary:
        """Single-scenario convenience wrapper around :meth:`run_strict`."""
        return self.run_strict([scenario])[0]


# ----------------------------------------------------------------------
# Process-wide default executor
# ----------------------------------------------------------------------
# The figure/table entry points accept an ``executor=`` keyword but
# default to this process-global instance so existing call sites (tests,
# examples, benches) keep working unchanged. The built-in default is the
# serial, uncached path -- byte-for-byte the old behaviour; the CLI and
# the benchmark conftest install parallel/cached executors.
_default_executor: SweepExecutor | None = None


def default_executor() -> SweepExecutor:
    """The process-global executor (serial + uncached unless installed)."""
    global _default_executor
    if _default_executor is None:
        _default_executor = SweepExecutor(max_workers=1, cache=None)
    return _default_executor


def set_default_executor(executor: SweepExecutor | None) -> SweepExecutor | None:
    """Install (or with None: reset) the process-global executor."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


@contextmanager
def use_executor(executor: SweepExecutor):
    """Scoped :func:`set_default_executor` (used by tests and benches)."""
    previous = set_default_executor(executor)
    try:
        yield executor
    finally:
        set_default_executor(previous)


def resolve_executor(executor: SweepExecutor | None) -> SweepExecutor:
    """``executor`` if given, else the process-global default."""
    return executor if executor is not None else default_executor()
