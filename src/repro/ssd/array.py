"""Multi-SSD arrays.

The paper's scalability study (Fig. 4) round-robins batch apps over 1-7
SSDs. :class:`SsdArray` owns the devices and implements that app-to-device
assignment; each device gets its own scheduler instance downstream (as in
Linux, where I/O schedulers are per request queue).

Randomness convention: the array draws exclusively from named
:class:`~repro.sim.rng.RngStreams` streams — ``device`` for device
service noise (one stream shared by every device, preserving the
historical event order bit-for-bit) and ``fleet.placement`` for
randomized app-to-device assignment. Because both streams are derived
from the scenario seed by name, array behaviour is deterministic,
reproducible across refactors, and content-addressable by the exec
cache (the seed is a :class:`~repro.core.config.Scenario` field; no
free-floating ``random.Random`` can leak irreproducible state in).
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.ssd.device import SimulatedNvmeDevice
from repro.ssd.model import SsdModel

#: Name of the stream randomized placement decisions draw from. Shared
#: with :mod:`repro.fleet.placement`, which uses the same stream name
#: for its seeded random baseline strategy.
PLACEMENT_STREAM = "fleet.placement"


class SsdArray:
    """A set of identical simulated NVMe devices."""

    def __init__(
        self,
        sim: Simulator,
        model: SsdModel,
        count: int,
        streams: RngStreams,
        preconditioned: bool = False,
    ):
        if count < 1:
            raise ValueError(f"device count must be >= 1, got {count}")
        self.model = model
        # One shared service-noise stream for all devices: per-device
        # streams would reorder every historical golden, and the shared
        # stream is consumed in deterministic event order anyway.
        device_rng = streams.stream("device")
        self.devices = [
            SimulatedNvmeDevice(sim, model, device_rng, index=i, preconditioned=preconditioned)
            for i in range(count)
        ]
        self._placement_rng = streams.stream(PLACEMENT_STREAM)

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, index: int) -> SimulatedNvmeDevice:
        return self.devices[index]

    def device_for_app(self, app_index: int) -> int:
        """Round-robin device assignment, as in the paper's Fig. 4 setup."""
        return app_index % len(self.devices)

    def random_device_for_app(self) -> int:
        """A seeded-random device assignment (the fleet baseline policy).

        Draws from the named ``fleet.placement`` stream, so randomized
        assignment is a pure function of the scenario seed: two runs of
        the same scenario make identical draws, and the exec cache key
        (which covers the seed) remains sound.
        """
        return self._placement_rng.randrange(len(self.devices))

    def total_bytes_completed(self) -> int:
        """Aggregate bytes completed across the array (reads + writes)."""
        return sum(
            sum(device.bytes_completed.values()) for device in self.devices
        )
