"""Plain-text rendering of benchmark output.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly
(EXPERIMENTS.md embeds their output verbatim).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    title: str, series: dict[str, list[tuple[float, float]]], x_label: str, y_label: str
) -> str:
    """One line per (label, x, y) point -- the figure's raw data."""
    lines = [f"{title}  [{x_label} -> {y_label}]"]
    for label in sorted(series):
        for x, y in series[label]:
            lines.append(f"  {label:<22s} {x:>12.3f} {y:>12.3f}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
