"""Tests for the repro.obs tracing and sampling subsystem.

Covers the span lifecycle invariants (monotonic timestamps, attribution
summing to end-to-end latency), sampler behaviour and determinism across
identical seeds, and the pay-for-what-you-use contract (no artifacts
when tracing is off, span cap respected).
"""

import pytest

from repro import IoCostKnob, IoMaxKnob, NoneKnob, Scenario, TraceConfig, run_scenario
from repro.iorequest import KIB, MIB
from repro.obs.sampler import StackSampler
from repro.obs.span import RequestTracer
from repro.sim.engine import Simulator
from repro.workloads.apps import batch_app, lc_app

TOL = 1e-6


def traced_scenario(knob=None, trace=TraceConfig(sample_period_us=5_000.0), seed=42):
    return Scenario(
        name="obs-test",
        knob=knob or NoneKnob(),
        apps=[
            batch_app("batch0", "/tenants/batch", size=64 * KIB),
            lc_app("lc0", "/tenants/lc"),
        ],
        duration_s=0.1,
        warmup_s=0.02,
        device_scale=8.0,
        seed=seed,
        trace=trace,
    )


@pytest.fixture(scope="module")
def traced_result():
    return run_scenario(traced_scenario())


class TestSpanInvariants:
    def test_spans_recorded_for_every_completion(self, traced_result):
        trace = traced_result.trace
        total_ios = sum(
            len(traced_result.collector.series_of(name)[0])
            for name in traced_result.collector.app_names()
        )
        assert len(trace.spans) == total_ios > 0

    def test_timestamps_monotonic_through_the_stack(self, traced_result):
        for span in traced_result.trace.spans:
            assert (
                span.submit_us
                <= span.admit_us
                <= span.dispatch_us
                <= span.device_us
                <= span.complete_us
            )

    def test_attribution_sums_to_end_to_end_latency(self, traced_result):
        for span in traced_result.trace.spans:
            total = span.held_us + span.queued_us + span.service_us
            assert total == pytest.approx(span.latency_us, abs=TOL)
            assert span.device_wait_us >= 0.0

    def test_throttled_scenario_attributes_held_time(self):
        scenario = traced_scenario(
            knob=IoMaxKnob(limits={"/tenants/batch": {"rbps": 4 * MIB}})
        )
        result = run_scenario(scenario)
        attribution = result.trace.attribution()
        assert attribution["batch0"].mean_held_us > attribution["lc0"].mean_held_us
        for attr in attribution.values():
            total = attr.held_us + attr.queued_us + attr.service_us
            assert total == pytest.approx(attr.latency_us, rel=1e-9)

    def test_cgroup_attribution_groups_by_path(self, traced_result):
        by_group = traced_result.trace.attribution(by="cgroup")
        by_app = traced_result.trace.attribution(by="app")
        assert set(by_group) == {"/tenants/batch", "/tenants/lc"}
        assert sum(a.ios for a in by_group.values()) == sum(
            a.ios for a in by_app.values()
        )

    def test_attribution_rejects_unknown_key(self, traced_result):
        with pytest.raises(ValueError):
            traced_result.trace.attribution(by="device")


class TestSampler:
    def test_samples_cover_the_run_at_the_configured_period(self, traced_result):
        samples = traced_result.trace.samples
        scenario = traced_result.scenario
        expected = int(scenario.duration_us / scenario.trace.sample_period_us)
        assert len(samples) == expected
        times = [row["t_us"] for row in samples]
        assert times == sorted(times)

    def test_samples_include_engine_and_stack_state(self, traced_result):
        row = traced_result.trace.samples[0]
        assert "engine.pending_events" in row
        assert "dev0.throttle.pending" in row
        assert "dev0.sched.queued" in row
        assert "dev0.ssd.in_flight" in row

    def test_iostat_counters_are_cumulative(self, traced_result):
        key = "cgroup./tenants/batch.rbytes"
        values = [row[key] for row in traced_result.trace.samples if key in row]
        assert values, "expected io.stat counters for the batch group"
        assert values == sorted(values)
        assert values[-1] > 0

    def test_iocost_internals_sampled(self):
        result = run_scenario(traced_scenario(knob=IoCostKnob()))
        keys = result.trace.sample_keys()
        assert any(key.endswith("io.cost.vrate_pct") for key in keys)
        assert any(".io.cost.group." in key for key in keys)

    def test_sampler_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            StackSampler(Simulator(), 0.0, dict)


class TestSamplerStreaming:
    """The subscribe/retain contract the repro.ctl plane builds on."""

    def counting_sampler(self, retain=True):
        sim = Simulator()
        counter = {"n": 0}

        def snapshot():
            counter["n"] += 1
            return {"n": counter["n"]}

        sampler = StackSampler(sim, 10.0, snapshot, retain=retain)
        return sim, sampler

    def test_subscribers_see_every_row_in_order(self):
        sim, sampler = self.counting_sampler()
        seen = []
        sampler.subscribe(seen.append)
        sampler.start()
        sim.run_until(55.0)
        assert [row["n"] for row in seen] == [1, 2, 3, 4, 5]
        assert [row["t_us"] for row in seen] == [10.0, 20.0, 30.0, 40.0, 50.0]
        # Streaming and retention describe the same rows.
        assert seen == sampler.samples

    def test_subscribers_run_in_subscription_order(self):
        sim, sampler = self.counting_sampler()
        order = []
        sampler.subscribe(lambda row: order.append("first"))
        sampler.subscribe(lambda row: order.append("second"))
        sampler.start()
        sim.run_until(15.0)
        assert order == ["first", "second"]

    def test_retain_false_feeds_subscribers_but_keeps_no_history(self):
        sim, sampler = self.counting_sampler(retain=False)
        seen = []
        sampler.subscribe(seen.append)
        sampler.start()
        sim.run_until(35.0)
        assert len(seen) == 3
        assert sampler.samples == []

    def test_start_is_idempotent(self):
        sim, sampler = self.counting_sampler()
        sampler.start()
        sampler.start()
        sim.run_until(25.0)
        assert len(sampler.samples) == 2  # one tick chain, not two

    def test_stop_halts_the_stream(self):
        sim, sampler = self.counting_sampler()
        seen = []
        sampler.subscribe(seen.append)
        sampler.start()
        sim.run_until(25.0)
        sampler.stop()
        sim.run_until(100.0)
        assert len(seen) == 2


class TestDeterminism:
    def test_identical_seeds_produce_identical_traces(self):
        a = run_scenario(traced_scenario(seed=7)).trace
        b = run_scenario(traced_scenario(seed=7)).trace
        assert a.spans == b.spans
        assert a.samples == b.samples

    def test_different_seeds_diverge(self):
        a = run_scenario(traced_scenario(seed=7)).trace
        b = run_scenario(traced_scenario(seed=8)).trace
        assert a.spans != b.spans


class TestPayForWhatYouUse:
    def test_disabled_tracing_yields_no_artifact(self):
        result = run_scenario(traced_scenario(trace=None))
        assert result.trace is None
        assert result.host.tracer is None
        assert result.host.sampler is None

    def test_spans_only_config_skips_sampler(self):
        result = run_scenario(
            traced_scenario(trace=TraceConfig(sample_period_us=0.0))
        )
        assert result.host.sampler is None
        assert result.trace.samples == []
        assert result.trace.spans

    def test_sampling_only_config_skips_tracer(self):
        result = run_scenario(
            traced_scenario(trace=TraceConfig(spans=False, sample_period_us=5_000.0))
        )
        assert result.host.tracer is None
        assert result.trace.spans == []
        assert result.trace.samples

    def test_max_spans_caps_memory(self):
        result = run_scenario(
            traced_scenario(trace=TraceConfig(max_spans=100, sample_period_us=0.0))
        )
        trace = result.trace
        assert len(trace.spans) == 100
        assert trace.dropped_spans > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(sample_period_us=-1.0)
        with pytest.raises(ValueError):
            TraceConfig(max_spans=-5)


class TestPerfCounters:
    def test_result_surfaces_engine_counters(self, traced_result):
        assert traced_result.events_processed > 0
        assert traced_result.wall_seconds > 0
        assert traced_result.events_per_sec > 0
        assert f"{traced_result.events_processed:,}" in traced_result.describe()

    def test_tracer_standalone_records_dropped(self):
        tracer = RequestTracer(max_spans=1)
        from repro.iorequest import IoRequest, OpType, Pattern

        for _ in range(3):
            tracer.record(
                IoRequest("a", "/g", OpType.READ, Pattern.RANDOM, 4096)
            )
        assert len(tracer.spans) == 1
        assert tracer.dropped == 2
