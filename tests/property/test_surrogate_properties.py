"""Property-based tests (hypothesis) for the surrogate layer.

The surrogate's contracts are structural, so they should hold for *any*
valid input, not just the golden scenarios: feature vectors are total
(every valid Scenario featurizes), fixed-width, NaN-free, and stable
under app-order permutation; fits are bit-identical for identical
corpora; ensemble-spread uncertainty is never negative. Scenarios are
generated the same way the tuner generates them -- by sampling each
knob space's parameters -- so the properties quantify over exactly the
population the prefilter scores.
"""

import dataclasses
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.d6_autotune import default_slo
from repro.core.scenarios import BE_GROUP, PRIORITY_GROUP, robustness_specs
from repro.ssd.presets import samsung_980pro_like
from repro.surrogate.features import (
    TARGET_NAMES,
    feature_names,
    featurize,
    featurize_scenario,
    scenario_cgroups,
)
from repro.surrogate.model import SurrogateConfig, fit_surrogate
from repro.tune.evaluator import TuneEvaluator
from repro.tune.space import TUNABLE_KNOBS, build_space

#: A fast fit for property examples: 2 members, 5 rounds.
FAST_CONFIG = SurrogateConfig(n_members=2, n_rounds=5)

_SSD = samsung_980pro_like()
_SPACES = {
    knob: build_space(
        knob,
        _SSD,
        device_scale=16.0,
        priority_group=PRIORITY_GROUP,
        be_group=BE_GROUP,
    )
    for knob in TUNABLE_KNOBS
}


def _evaluator(knob: str) -> TuneEvaluator:
    """A mini-scale evaluator whose ``scenario_for`` renders candidates."""
    return TuneEvaluator(
        space=_SPACES[knob],
        slo=default_slo(),
        apps=robustness_specs(be_queue_depth=32, n_be_apps=2),
        ssd=_SSD,
        device_scale=16.0,
        duration_s=0.3,
        warmup_s=0.1,
    )


def _values_from_units(space, units: list[float]) -> dict:
    """Map unit-interval draws onto the space's parameters (log-aware)."""
    values = {}
    for param, unit in zip(space.parameters(), units):
        if param.log:
            raw = param.lo * (param.hi / param.lo) ** unit
        else:
            raw = param.lo + (param.hi - param.lo) * unit
        values[param.name] = param.clamp(raw)
    return values


knob_names = st.sampled_from(TUNABLE_KNOBS)
unit_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=4,
    max_size=4,
)


class TestFeatureTotality:
    @given(knob=knob_names, units=unit_vectors)
    @settings(max_examples=60, deadline=None)
    def test_fixed_width_and_finite(self, knob, units):
        """Any sampled candidate featurizes to a full, finite row."""
        evaluator = _evaluator(knob)
        values = _values_from_units(evaluator.space, units)
        scenario = evaluator.scenario_for(values)
        names = feature_names()
        cgroups = scenario_cgroups(scenario)
        assert cgroups, "every tuning scenario has at least one cgroup"
        for cgroup in cgroups:
            row = featurize(scenario, cgroup)
            assert len(row) == len(names)
            assert all(math.isfinite(cell) for cell in row)

    @given(knob=knob_names, units=unit_vectors)
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, knob, units):
        """Featurizing the same scenario twice is bit-identical."""
        evaluator = _evaluator(knob)
        values = _values_from_units(evaluator.space, units)
        scenario = evaluator.scenario_for(values)
        assert featurize_scenario(scenario) == featurize_scenario(scenario)

    @given(knob=knob_names, units=unit_vectors, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_permutation_stable(self, knob, units, seed):
        """Reordering ``scenario.apps`` never changes any feature row."""
        evaluator = _evaluator(knob)
        values = _values_from_units(evaluator.space, units)
        scenario = evaluator.scenario_for(values)
        order = np.random.default_rng(seed).permutation(len(scenario.apps))
        shuffled = dataclasses.replace(
            scenario, apps=[scenario.apps[i] for i in order]
        )
        assert featurize_scenario(scenario) == featurize_scenario(shuffled)


def _synthetic_training_set(seed: int, rows: int):
    """A smooth, noisy (X, y) set over a small synthetic feature space."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(rows, 5))
    p99 = 50.0 + 400.0 * X[:, 0] + 30.0 * X[:, 1] * X[:, 2]
    bw = 20.0 + 100.0 * (1.0 - X[:, 0]) + 10.0 * X[:, 3]
    util = bw / 200.0
    noise = rng.normal(0.0, 0.05, size=(rows, 3))
    y = np.stack([p99, bw, util], axis=1) * (1.0 + noise)
    return X, np.abs(y)


SYNTH_NAMES = tuple(f"f{i}" for i in range(5))


class TestFitProperties:
    @given(seed=st.integers(0, 2**16), rows=st.integers(8, 40))
    @settings(max_examples=20, deadline=None)
    def test_refit_bit_identical(self, seed, rows):
        """The same training set always fits to the same saved model."""
        X, y = _synthetic_training_set(seed, rows)
        first = fit_surrogate(X, y, SYNTH_NAMES, seed=7, config=FAST_CONFIG)
        second = fit_surrogate(X, y, SYNTH_NAMES, seed=7, config=FAST_CONFIG)
        assert first.to_json_dict() == second.to_json_dict()

    @given(seed=st.integers(0, 2**16), rows=st.integers(8, 40))
    @settings(max_examples=20, deadline=None)
    def test_uncertainty_nonnegative_and_predictions_finite(self, seed, rows):
        """Ensemble spread is never negative; predictions never NaN."""
        X, y = _synthetic_training_set(seed, rows)
        model = fit_surrogate(X, y, SYNTH_NAMES, seed=7, config=FAST_CONFIG)
        probe = np.random.default_rng(seed + 1).uniform(-0.5, 1.5, (16, 5))
        means, stds = model.predict(probe)
        assert means.shape == (16, len(TARGET_NAMES))
        assert stds.shape == (16, len(TARGET_NAMES))
        assert np.isfinite(means).all() and np.isfinite(stds).all()
        assert (stds >= 0.0).all()
