"""fio-like workload generation.

:class:`~repro.workloads.spec.JobSpec` is the equivalent of an fio job
file: direction mix, request size, access pattern, queue depth, optional
rate limit, and one or more activity windows (for the staggered
start/stop timelines of Fig. 2 and the burst scenarios of §VI-C).

:mod:`repro.workloads.apps` provides the paper's three app archetypes
(§II-A): LC-apps (QD=1 4 KiB random reads, tail-latency sensitive),
batch-apps (QD=256 4 KiB random reads, bandwidth hungry) and BE-apps
(best effort, no requirements).

:class:`~repro.workloads.generator.App` is the runtime driver: a
closed-loop issuer that keeps ``queue_depth`` requests outstanding,
honouring rate limits and activity windows.
"""

from repro.workloads.spec import JobSpec, ActivityWindow, ArrivalPhase
from repro.workloads.apps import lc_app, batch_app, be_app
from repro.workloads.generator import App
from repro.workloads.patterns import (
    churn_windows,
    diurnal_phases,
    flash_crowd_phases,
)

__all__ = [
    "JobSpec",
    "ActivityWindow",
    "ArrivalPhase",
    "lc_app",
    "batch_app",
    "be_app",
    "App",
    "churn_windows",
    "diurnal_phases",
    "flash_crowd_phases",
]
