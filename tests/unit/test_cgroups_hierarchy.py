"""Unit tests for the cgroup v2 tree and its structural rules."""

import pytest

from repro.cgroups.errors import DelegationError, InvalidKnobValue
from repro.cgroups.hierarchy import Cgroup, CgroupHierarchy
from repro.cgroups.knobs import PrioClass


@pytest.fixture
def tree() -> CgroupHierarchy:
    return CgroupHierarchy()


class TestStructure:
    def test_root_exists_and_has_controllers(self, tree):
        assert tree.root.is_root
        assert "io" in tree.root.subtree_control

    def test_create_child(self, tree):
        child = tree.root.create_child("tenants")
        assert child.path == "/tenants"
        assert child.parent is tree.root

    def test_duplicate_child_rejected(self, tree):
        tree.root.create_child("a")
        with pytest.raises(DelegationError):
            tree.root.create_child("a")

    @pytest.mark.parametrize("bad", ["", "a/b", ".", ".."])
    def test_invalid_names_rejected(self, tree, bad):
        with pytest.raises(DelegationError):
            tree.root.create_child(bad)

    def test_nested_paths(self, tree):
        leaf = tree.create("/tenants/a/b", processes=True)
        assert leaf.path == "/tenants/a/b"
        assert tree.find("/tenants/a/b") is leaf

    def test_find_missing_raises(self, tree):
        with pytest.raises(DelegationError):
            tree.find("/nope")

    def test_find_requires_absolute_path(self, tree):
        with pytest.raises(DelegationError):
            tree.find("relative")

    def test_remove_empty_child(self, tree):
        tree.root.create_child("a")
        tree.root.remove_child("a")
        assert "a" not in tree.root.children

    def test_remove_nonempty_child_rejected(self, tree):
        child = tree.root.create_child("a")
        child.add_process("p")
        with pytest.raises(DelegationError):
            tree.root.remove_child("a")

    def test_remove_missing_child_rejected(self, tree):
        with pytest.raises(DelegationError):
            tree.root.remove_child("ghost")

    def test_walk_visits_all(self, tree):
        tree.create("/a/b", processes=True)
        tree.create("/a/c", processes=True)
        paths = {g.path for g in tree.groups()}
        assert paths == {"/", "/a", "/a/b", "/a/c"}

    def test_ancestors(self, tree):
        leaf = tree.create("/a/b/c")
        assert [g.path for g in leaf.ancestors()] == ["/a/b", "/a", "/"]


class TestNoInternalProcesses:
    def test_management_group_rejects_processes(self, tree):
        mgmt = tree.root.create_child("mgmt")
        mgmt.enable_subtree_control("io")
        with pytest.raises(DelegationError):
            mgmt.add_process("p")

    def test_process_group_rejects_subtree_control(self, tree):
        proc = tree.root.create_child("proc")
        proc.add_process("p")
        with pytest.raises(DelegationError):
            proc.enable_subtree_control("io")

    def test_group_kind_properties(self, tree):
        group = tree.root.create_child("x")
        assert not group.is_management_group
        assert not group.is_process_group
        group.add_process("p")
        assert group.is_process_group

    def test_create_with_processes_on_management_path_rejected(self, tree):
        tree.create("/a/b")  # makes /a a management group
        with pytest.raises(DelegationError):
            tree.create("/a", processes=True)


class TestDelegation:
    def test_subtree_control_requires_parent_delegation(self, tree):
        a = tree.root.create_child("a")  # no +io on /a
        b = a.create_child("b")
        with pytest.raises(DelegationError):
            b.enable_subtree_control("io")

    def test_unknown_controller_rejected(self, tree):
        with pytest.raises(DelegationError):
            tree.root.create_child("a").enable_subtree_control("gpu")

    def test_disable_in_use_controller_rejected(self, tree):
        a = tree.root.create_child("a")
        a.enable_subtree_control("io")
        b = a.create_child("b")
        b.enable_subtree_control("io")
        with pytest.raises(DelegationError):
            a.disable_subtree_control("io")

    def test_disable_unused_controller(self, tree):
        a = tree.root.create_child("a")
        a.enable_subtree_control("io")
        a.disable_subtree_control("io")
        assert "io" not in a.subtree_control

    def test_knob_write_requires_parent_io(self, tree):
        a = tree.root.create_child("a")  # /a writable: parent is root
        a.write("io.max", "259:0 rbps=1000")
        b = a.create_child("b")  # /a does not delegate io
        with pytest.raises(DelegationError):
            b.write("io.max", "259:0 rbps=1000")

    def test_io_cost_is_root_only(self, tree):
        child = tree.root.create_child("a")
        with pytest.raises(DelegationError):
            child.write("io.cost.qos", "259:0 enable=1")
        tree.root.write("io.cost.qos", "259:0 enable=1")  # root OK

    def test_io_prio_class_writable_in_any_group(self, tree):
        leaf = tree.create("/a/b", processes=True)
        leaf.write("io.prio.class", "idle")
        assert leaf.prio_class() == PrioClass.IDLE


class TestKnobState:
    def test_unknown_knob_file(self, tree):
        with pytest.raises(InvalidKnobValue):
            tree.root.write("io.bogus", "1")
        with pytest.raises(InvalidKnobValue):
            tree.root.read_parsed("io.bogus")

    def test_defaults_when_unset(self, tree):
        group = tree.root.create_child("a")
        assert group.io_weight() == 100
        assert group.bfq_weight() == 100
        assert group.prio_class() == PrioClass.NONE

    def test_per_device_knob_merges_across_writes(self, tree):
        group = tree.root.create_child("a")
        group.write("io.max", "259:0 rbps=1000")
        group.write("io.max", "259:1 rbps=2000")
        table = group.read_parsed("io.max")
        assert set(table) == {"259:0", "259:1"}

    def test_per_device_knob_overwrites_same_device(self, tree):
        group = tree.root.create_child("a")
        group.write("io.max", "259:0 rbps=1000")
        group.write("io.max", "259:0 rbps=5000")
        assert group.read_parsed("io.max", "259:0").rbps == 5000

    def test_scalar_knob_roundtrip(self, tree):
        group = tree.root.create_child("a")
        group.write("io.weight", "default 500")
        assert group.io_weight() == 500

    def test_prio_class_not_inherited(self, tree):
        parent = tree.root.create_child("p")
        parent.write("io.prio.class", "realtime")
        parent.enable_subtree_control("io")
        child = parent.create_child("c")
        assert child.prio_class() == PrioClass.NONE

    def test_leaf_for_process(self, tree):
        leaf = tree.create("/a/b", processes=True)
        leaf.add_process("fio-1")
        assert tree.leaf_for_process("fio-1") is leaf
        assert tree.leaf_for_process("ghost") is None

    def test_create_is_idempotent_for_existing_paths(self, tree):
        first = tree.create("/a/b", processes=True)
        second = tree.create("/a/b", processes=True)
        assert first is second
