"""Multi-SSD arrays.

The paper's scalability study (Fig. 4) round-robins batch apps over 1-7
SSDs. :class:`SsdArray` owns the devices and implements that app-to-device
assignment; each device gets its own scheduler instance downstream (as in
Linux, where I/O schedulers are per request queue).
"""

from __future__ import annotations

import random

from repro.sim.engine import Simulator
from repro.ssd.device import SimulatedNvmeDevice
from repro.ssd.model import SsdModel


class SsdArray:
    """A set of identical simulated NVMe devices."""

    def __init__(
        self,
        sim: Simulator,
        model: SsdModel,
        count: int,
        rng: random.Random,
        preconditioned: bool = False,
    ):
        if count < 1:
            raise ValueError(f"device count must be >= 1, got {count}")
        self.model = model
        self.devices = [
            SimulatedNvmeDevice(sim, model, rng, index=i, preconditioned=preconditioned)
            for i in range(count)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, index: int) -> SimulatedNvmeDevice:
        return self.devices[index]

    def device_for_app(self, app_index: int) -> int:
        """Round-robin device assignment, as in the paper's Fig. 4 setup."""
        return app_index % len(self.devices)

    def total_bytes_completed(self) -> int:
        """Aggregate bytes completed across the array (reads + writes)."""
        return sum(
            sum(device.bytes_completed.values()) for device in self.devices
        )
