"""Control primitives: a discrete PID loop and an actuation rate limiter.

Both are plant-agnostic and unit-free: the PID integrates per control
*step* (not per microsecond), so gains stay meaningful across device
scales and control periods, and the rate limiter bounds *relative*
change per applied actuation. Every numeric path is hardened against
non-finite inputs -- a controller fed garbage observations must degrade
to "hold the current setting", never emit NaN or a negative limit
(property-tested in ``tests/property/test_ctl_properties.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ctl.config import PidParams


class PidState:
    """Positional discrete PID: ``u = initial + kp*e + ki*I + kd*de``.

    The output is clamped to ``[out_lo, out_hi]``. Anti-windup uses
    conditional integration: while the output saturates at a bound and
    the error keeps pushing past it, the integral stops accumulating, so
    the loop reacts immediately when the error changes sign instead of
    unwinding minutes of accumulated windup. The integral is additionally
    clamped so ``ki * I`` can never exceed the full output span.
    """

    def __init__(self, params: PidParams, out_lo: float, out_hi: float, initial: float):
        if not out_lo < out_hi:
            raise ValueError("output bounds must satisfy out_lo < out_hi")
        if not out_lo <= initial <= out_hi:
            raise ValueError("initial output must be inside the bounds")
        self.params = params
        self.out_lo = out_lo
        self.out_hi = out_hi
        self.initial = initial
        self.integral = 0.0
        self.last_error: float | None = None
        self.output = initial

    def _integral_bound(self) -> float:
        """Cap on |integral| so the I term stays within the output span."""
        ki = abs(self.params.ki)
        if ki <= 0:
            return 0.0
        return (self.out_hi - self.out_lo) / ki

    def step(self, error: float) -> float:
        """Advance one control step and return the clamped output.

        A non-finite error contributes nothing (the loop holds); the
        derivative term is zero on the first step.
        """
        if not math.isfinite(error):
            error = 0.0
        params = self.params
        derivative = 0.0 if self.last_error is None else error - self.last_error
        self.last_error = error

        candidate = (
            self.initial
            + params.kp * error
            + params.ki * self.integral
            + params.kd * derivative
        )
        saturated_hi = candidate > self.out_hi and error > 0
        saturated_lo = candidate < self.out_lo and error < 0
        if not (saturated_hi or saturated_lo):
            self.integral += error
            bound = self._integral_bound()
            self.integral = max(-bound, min(bound, self.integral))
            candidate = (
                self.initial
                + params.kp * error
                + params.ki * self.integral
                + params.kd * derivative
            )
        self.output = max(self.out_lo, min(self.out_hi, candidate))
        return self.output

    def reset(self) -> None:
        """Forget accumulated state (integral, derivative history)."""
        self.integral = 0.0
        self.last_error = None
        self.output = self.initial


@dataclass
class RateLimiter:
    """Bounds how fast and how often a controller may move a setting.

    ``max_step_fraction`` caps the relative change per applied actuation
    (``0.5`` allows at most +-50% of the current value per step);
    ``max_recover_fraction``, when set, caps *upward* steps separately
    -- the classic asymmetric profile (cut fast under violation, creep
    back slowly) that keeps a loop from oscillating straight back into
    the drift it just escaped; ``min_interval_us`` enforces a minimum
    simulated time between applied actuations. All three guards exist in
    real control planes to keep an over-eager loop from slamming the
    plant.
    """

    max_step_fraction: float = 0.5
    max_recover_fraction: float | None = None
    min_interval_us: float = 0.0
    _last_applied_us: float = field(default=-math.inf, init=False, repr=False)

    def ready(self, now_us: float) -> bool:
        """Whether enough simulated time has passed since the last apply."""
        return now_us - self._last_applied_us >= self.min_interval_us

    def clamp(self, current: float, proposed: float) -> float:
        """Limit ``proposed`` to one allowed step away from ``current``.

        Non-finite or negative proposals degrade to holding ``current``
        -- the no-NaN / no-negative guarantee every controller relies on.
        """
        if not math.isfinite(proposed) or proposed < 0:
            return current
        if not math.isfinite(current) or current <= 0:
            return proposed
        up = (
            self.max_step_fraction
            if self.max_recover_fraction is None
            else self.max_recover_fraction
        )
        lo = current * (1.0 - self.max_step_fraction)
        hi = current * (1.0 + up)
        return max(lo, min(hi, proposed))

    def mark(self, now_us: float) -> None:
        """Record an applied actuation at ``now_us``."""
        self._last_applied_us = now_us
