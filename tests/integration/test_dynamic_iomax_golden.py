"""Golden pin of the pre-Controller ``DynamicIoMaxManager`` behavior.

PR 9 generalizes the one-off dynamic io.max practitioner loop onto the
``repro.ctl`` Controller base. This test freezes the manager's exact
observable behavior *before* that refactor -- the full deterministic
summary content (hashed), the per-group window stats, and the number of
adjustment ticks -- so the generalization is provably
behavior-preserving: any drift in event timing, knob writes or active-set
detection changes the hash.

Regenerate (only for an intentional behavior change) with::

    PYTHONPATH=src python tests/integration/test_dynamic_iomax_golden.py
"""

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.core.config import DynamicIoMaxKnob, Scenario
from repro.core.runner import run_scenario
from repro.exec.summary import summarize
from repro.workloads.apps import batch_app
from repro.workloads.spec import ActivityWindow

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "dynamic_iomax_golden.json"

WEIGHTS = {"/t/heavy": 300, "/t/light": 100}
HEAVY_STOPS_AT_US = 0.25e6


def _scenario() -> Scenario:
    """A small start/stop timeline under the managed io.max knob.

    Mirrors the ablation bench's shape (heavy tenant stops mid-run, the
    manager reassigns its share to the survivor) at mini scale.
    """
    heavy = dataclasses.replace(
        batch_app("heavy", "/t/heavy", queue_depth=32),
        windows=(ActivityWindow(0.0, HEAVY_STOPS_AT_US),),
    )
    light = batch_app("light", "/t/light", queue_depth=32)
    return Scenario(
        name="dynamic-iomax-golden",
        knob=DynamicIoMaxKnob(weights=WEIGHTS, adjust_period_us=100_000.0),
        apps=[heavy, light],
        duration_s=0.6,
        warmup_s=0.1,
        device_scale=16.0,
    )


def _observe() -> dict:
    """Run the pinned scenario and distill the golden document."""
    result = run_scenario(_scenario())
    summary = summarize(result)
    content = json.dumps(summary.content_dict(), sort_keys=True)
    manager = result.host.iomax_managers[0]
    groups = {}
    for path, stats in sorted(result.cgroup_stats().items()):
        groups[path] = {
            "ios": stats.ios,
            "bytes": stats.bytes,
            "p99_us": stats.latency.p99_us if stats.latency else None,
        }
    return {
        "adjustments": manager.adjustments,
        "content_sha256": hashlib.sha256(content.encode()).hexdigest(),
        "groups": groups,
    }


def test_dynamic_iomax_behavior_is_pinned():
    golden = json.loads(GOLDEN_PATH.read_text())
    observed = _observe()
    assert observed["adjustments"] == golden["adjustments"]
    assert observed["groups"] == golden["groups"]
    assert observed["content_sha256"] == golden["content_sha256"]


def _regenerate() -> None:
    """Rewrite the golden from the current code (intentional changes only)."""
    GOLDEN_PATH.write_text(json.dumps(_observe(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate()
