"""MQ-Deadline with I/O priority classes (io.prio.class).

Re-implements the behaviour the paper measures in §IV-B and §VI:

* three per-class queues (realtime > best-effort > idle); requests whose
  group sets no class fall into best-effort, like the kernel;
* strict class gating at dispatch: a lower-class request dispatches only
  when no higher-class request is queued *or in flight* -- this is what
  produces the near-total starvation ("tens of KiB/s") of lower classes
  under a saturating realtime app (Fig. 2b);
* an aging timeout (``prio_aging_expire``) that lets a starved request
  dispatch anyway, bounding starvation;
* a serialized dispatch section (~2 us/request) that caps bandwidth at
  roughly 1.8 GiB/s of 4 KiB I/O regardless of CPU count (O2);
* **lock-affinity skew**: within a class, dispatch is FIFO -- but when
  many groups contend for the dispatch lock, acquisition is biased by a
  per-group affinity factor (cores topologically near the previous
  holder reacquire a contended spinlock cheaper). The skew strength
  grows with the number of contending groups, reproducing the fairness
  collapse past the CPU saturation point (O3). Scenarios with few
  groups see plain FIFO. The ablation bench toggles this off.
"""

from __future__ import annotations

import math
import random
import zlib
from collections import deque
from typing import Optional

from repro.cgroups.knobs import PrioClass
from repro.iocontrol.base import IoScheduler
from repro.iorequest import IoRequest

# Dispatch order: realtime, then best-effort, then idle.
_CLASS_ORDER = (PrioClass.REALTIME, PrioClass.BEST_EFFORT, PrioClass.IDLE)

# Requests whose group sets no class fall into best-effort, like the
# kernel. Keyed by both the enum member and its raw value so callers may
# pass either.
_EFFECTIVE_CLASS = {cls: cls for cls in _CLASS_ORDER}
_EFFECTIVE_CLASS.update({cls.value: cls for cls in _CLASS_ORDER})
_EFFECTIVE_CLASS[PrioClass.NONE] = PrioClass.BEST_EFFORT
_EFFECTIVE_CLASS[PrioClass.NONE.value] = PrioClass.BEST_EFFORT

# Lock-affinity skew ramps from zero below this many contending groups...
AFFINITY_MIN_GROUPS = 6
# ...to full strength after this many more.
AFFINITY_RAMP_GROUPS = 10


def group_affinity_unit(path: str) -> float:
    """Deterministic per-group affinity in [-1, 1] (stable across runs)."""
    return (zlib.crc32(path.encode()) / 0xFFFFFFFF) * 2.0 - 1.0


def affinity_strength(n_groups: int) -> float:
    """Contention-depth ramp: 0 for few groups, 1 for many."""
    return min(1.0, max(0.0, (n_groups - AFFINITY_MIN_GROUPS) / AFFINITY_RAMP_GROUPS))


class _ClassQueues:
    """Per-group FIFO subqueues of one priority class."""

    __slots__ = ("groups", "size")

    def __init__(self) -> None:
        self.groups: dict[str, deque[tuple[float, int, IoRequest]]] = {}
        self.size = 0

    def push(self, entry_time: float, seq: int, req: IoRequest) -> None:
        queue = self.groups.get(req.cgroup_path)
        if queue is None:
            queue = deque()
            self.groups[req.cgroup_path] = queue
        queue.append((entry_time, seq, req))
        self.size += 1

    def pop_from(self, path: str) -> IoRequest:
        queue = self.groups[path]
        _, _, req = queue.popleft()
        if not queue:
            del self.groups[path]
        self.size -= 1
        return req

    def oldest_group(self) -> Optional[str]:
        """Group whose head request arrived first (global FIFO order)."""
        best_path: Optional[str] = None
        best_seq = -1
        for path, queue in self.groups.items():
            seq = queue[0][1]
            if best_path is None or seq < best_seq:
                best_path = path
                best_seq = seq
        return best_path

    def oldest_entry_time(self) -> Optional[float]:
        best: Optional[float] = None
        for queue in self.groups.values():
            t = queue[0][0]
            if best is None or t < best:
                best = t
        return best


class MqDeadlineScheduler(IoScheduler):
    """Per-priority-class queues with anti-starvation aging."""

    name = "mq-deadline"
    lock_overhead_us = 2.1

    def __init__(
        self,
        prio_aging_expire_us: float = 2_000_000.0,
        affinity_sigma: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if prio_aging_expire_us <= 0:
            raise ValueError("prio_aging_expire_us must be positive")
        self.prio_aging_expire_us = prio_aging_expire_us
        self.affinity_sigma = affinity_sigma
        self.rng = rng or random.Random(0)
        self._queues: dict[int, _ClassQueues] = {cls: _ClassQueues() for cls in _CLASS_ORDER}
        self._in_flight: dict[int, int] = {cls: 0 for cls in _CLASS_ORDER}
        self._seq = 0
        self._affinity_cache: dict[str, float] = {}

    @staticmethod
    def _effective_class(req: IoRequest) -> PrioClass:
        return _EFFECTIVE_CLASS[req.prio_class]

    def add(self, req: IoRequest) -> None:
        cls = self._effective_class(req)
        self._queues[cls].push(req.queued_time, self._seq, req)
        self._seq += 1

    def _higher_busy(self, cls: PrioClass) -> bool:
        """Is any strictly higher class queued or in flight?"""
        for other in _CLASS_ORDER:
            if other >= cls:
                return False
            if self._queues[other].size or self._in_flight[other] > 0:
                return True
        return False

    def _affinity_weight(self, path: str) -> float:
        weight = self._affinity_cache.get(path)
        if weight is None:
            weight = math.exp(self.affinity_sigma * group_affinity_unit(path))
            self._affinity_cache[path] = weight
        return weight

    def _pick_group(self, queues: _ClassQueues) -> str:
        """FIFO normally; affinity-biased under deep group contention."""
        n_groups = len(queues.groups)
        strength = affinity_strength(n_groups) if self.affinity_sigma > 0 else 0.0
        if strength <= 0.0:
            path = queues.oldest_group()
            assert path is not None
            return path
        paths = list(queues.groups)
        weights = [self._affinity_weight(path) ** strength for path in paths]
        return self.rng.choices(paths, weights=weights, k=1)[0]

    def pop(self, now: float) -> tuple[Optional[IoRequest], Optional[float]]:
        # Aged requests dispatch regardless of class gating. Note the
        # comparison uses the same `oldest + expire` expression the
        # blocked branch reports as the retry deadline: writing it as
        # `now - oldest >= expire` rounds differently and can refuse to
        # dispatch exactly at the armed deadline, livelocking the
        # dispatch engine.
        for cls in _CLASS_ORDER:
            queues = self._queues[cls]
            if not queues.size:
                continue
            oldest = queues.oldest_entry_time()
            if oldest is not None and now >= oldest + self.prio_aging_expire_us:
                path = queues.oldest_group()
                assert path is not None
                req = queues.pop_from(path)
                self._in_flight[cls] += 1
                return req, None

        retry_at: Optional[float] = None
        for cls in _CLASS_ORDER:
            queues = self._queues[cls]
            if not queues.size:
                continue
            if self._higher_busy(cls):
                # Blocked by a higher class; it will dispatch at aging
                # expiry at the latest.
                oldest = queues.oldest_entry_time()
                assert oldest is not None
                deadline = oldest + self.prio_aging_expire_us
                retry_at = deadline if retry_at is None else min(retry_at, deadline)
                continue
            req = queues.pop_from(self._pick_group(queues))
            self._in_flight[cls] += 1
            return req, None
        return None, retry_at

    def on_complete(self, req: IoRequest) -> None:
        cls = self._effective_class(req)
        if self._in_flight[cls] > 0:
            self._in_flight[cls] -= 1

    def queued(self) -> int:
        return sum(queues.size for queues in self._queues.values())

    def snapshot(self) -> dict[str, float]:
        """Per-priority-class backlog and in-flight depth."""
        row: dict[str, float] = {"queued": float(self.queued())}
        for cls in _CLASS_ORDER:
            name = cls.name.lower()
            row[f"class.{name}.queued"] = float(self._queues[cls].size)
            row[f"class.{name}.in_flight"] = float(self._in_flight[cls])
        return row
