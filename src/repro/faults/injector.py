"""Per-device fault runtime: turns a :class:`FaultPlan` into events.

One :class:`FaultInjector` is built per simulated device when
``Scenario.faults`` is set. It owns three mechanisms:

* **stall injection** — latency spikes and GC-storm relocation chunks
  occupy flash units through the device's own ``QueuedServer``, so
  foreground requests queue behind faults exactly like they queue
  behind each other;
* **service scaling** — the device multiplies flash/bus occupancy by
  :meth:`service_multiplier` (sustained slowdowns, storm write
  amplification is applied separately through the GC state);
* **error rolls** — :meth:`roll_error` decides per request entering
  service whether it fails, drawing from the scenario's dedicated
  seeded fault stream (``faults.dev<i>``), so fault placement never
  perturbs workload or device-noise randomness.

All counters are exposed through :meth:`snapshot` and picked up by the
periodic stack sampler as ``dev<i>.faults.*`` rows, making "slow because
faulted" distinguishable from "slow because throttled" in traces.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan, GcStorm, LatencySpike


def _noop() -> None:
    """Completion callback for fault occupancy (nothing to deliver)."""
    return None


class FaultInjector:
    """Schedules one device's faults and answers its per-request probes."""

    def __init__(self, sim, device, plan: FaultPlan, rng: random.Random):
        self.sim = sim
        self.device = device
        self.plan = plan
        self.rng = rng
        self._started = False
        self._storms_active = 0
        # Lifetime counters (surfaced via snapshot()).
        self.spikes_injected = 0
        self.storm_windows = 0
        self.errors_injected = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm every scheduled fault chain (idempotent)."""
        if self._started:
            return
        self._started = True
        for spike in self.plan.spikes:
            self.sim.schedule(spike.first_at_us, lambda s=spike: self._spike(s))
        for storm in self.plan.storms:
            self.sim.schedule(
                storm.first_at_us, lambda s=storm: self._storm_begin(s)
            )

    def _units(self, fraction: float) -> int:
        """Number of flash units a fault occupies (at least one)."""
        return max(1, round(fraction * self.device.model.parallelism))

    # ------------------------------------------------------------------
    # Latency spikes
    # ------------------------------------------------------------------
    def _spike(self, spike: LatencySpike) -> None:
        """Fire one latency spike, then self-schedule the next (jittered)."""
        self.spikes_injected += 1
        for _ in range(self._units(spike.unit_fraction)):
            self.device.flash.submit(spike.stall_us, _noop)
        gap = spike.period_us
        if spike.jitter:
            gap *= 1.0 + spike.jitter * (2.0 * self.rng.random() - 1.0)
        self.sim.schedule(gap, lambda: self._spike(spike))

    # ------------------------------------------------------------------
    # GC storms
    # ------------------------------------------------------------------
    def _storm_begin(self, storm: GcStorm) -> None:
        """Open a storm window: raise WAF, start relocation chunks."""
        self.storm_windows += 1
        self._storms_active += 1
        self.device.gc.begin_storm(storm.extra_waf)
        end_at = self.sim.now + storm.storm_us
        if storm.duty > 0:
            self._storm_chunk(storm, end_at)
        self.sim.schedule(storm.storm_us, lambda: self._storm_end(storm))

    def _storm_chunk(self, storm: GcStorm, end_at: float) -> None:
        """One relocation slice: occupy units for ``duty`` of the period."""
        if self.sim.now >= end_at:
            return
        busy_us = storm.duty * storm.chunk_period_us
        for _ in range(self._units(storm.unit_fraction)):
            self.device.flash.submit(busy_us, _noop)
        self.sim.schedule(
            storm.chunk_period_us, lambda: self._storm_chunk(storm, end_at)
        )

    def _storm_end(self, storm: GcStorm) -> None:
        """Close the storm window and schedule the next one."""
        self._storms_active -= 1
        self.device.gc.end_storm(storm.extra_waf)
        self.sim.schedule(
            storm.period_us - storm.storm_us,
            lambda: self._storm_begin(storm),
        )

    # ------------------------------------------------------------------
    # Per-request probes (called by the device on its service path)
    # ------------------------------------------------------------------
    def service_multiplier(self, op: int, now: float) -> float:
        """Sustained-slowdown factor for a request entering service now."""
        mult = 1.0
        for slow in self.plan.slowdowns:
            if slow.start_us <= now < slow.stop_us:
                mult *= slow.write_mult if op else slow.read_mult
        return mult

    def roll_error(self, now: float) -> float:
        """Error service cost if this request fails, else 0.0.

        A single RNG draw per request inside an active error window keeps
        the stream consumption (and therefore determinism) independent of
        how many error specs overlap.
        """
        probability = 0.0
        latency = 0.0
        for err in self.plan.errors:
            if err.start_us <= now < err.stop_us:
                probability = 1.0 - (1.0 - probability) * (1.0 - err.probability)
                latency = max(latency, err.error_latency_us)
        if probability > 0.0 and self.rng.random() < probability:
            self.errors_injected += 1
            return max(latency, 1e-9)
        return 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def storm_active(self) -> bool:
        """True while at least one GC storm window is open."""
        return self._storms_active > 0

    def snapshot(self) -> dict[str, float]:
        """Injector counters for the periodic sampler (``faults.*`` keys)."""
        return {
            "spikes_injected": float(self.spikes_injected),
            "storm_windows": float(self.storm_windows),
            "storm_active": 1.0 if self.storm_active else 0.0,
            "errors_injected": float(self.errors_injected),
        }
