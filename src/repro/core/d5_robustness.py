"""D5: robustness — which knob still isolates when the SSD misbehaves?

Table I ranks the five cgroup I/O-control knobs on a *healthy* device.
The paper's own GC discussion (flash preconditioning, §III) shows that
isolation quality collapses exactly when the device degrades, so D5
re-asks the central question under fault injection: the §VI-B trade-off
shape (one latency-critical app + saturating best-effort readers) is run
once healthy and once under each :mod:`repro.faults` preset, with every
knob in its protecting configuration (the same configurations the D4
burst study uses).

The score is the **degradation ratio**: the LC app's p99 latency under a
fault divided by its p99 on the healthy device, same knob. A ratio near
1 means the knob absorbs the fault (the BE apps eat the lost capacity);
a large ratio means the fault blows through the protection. Knobs are
ranked by their mean ratio across fault classes, mirroring how Table I
ranks them when healthy.

Everything fans out through the sweep executor in a single batch, so
``isol-bench d5 --workers N`` parallelizes the whole (knob x fault)
matrix and reruns hit the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import KnobConfig, Scenario
from repro.core.d4_bursts import burst_knobs
from repro.core.scenarios import BE_GROUP, robustness_specs
from repro.core.table_one import CONTROL_KNOBS
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.faults import get_fault_plan
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like

#: The fault classes the acceptance table covers; ``isol-bench d5``
#: accepts any subset of repro.faults.FAULT_CLASSES.
DEFAULT_FAULT_CLASSES = ("latency-spike", "gc-storm", "transient-error")

#: Label for the no-faults baseline column.
HEALTHY = "healthy"


@dataclass
class RobustnessSettings:
    """Effort level and fault matrix for the D5 evaluation."""

    ssd: SsdModel = None  # type: ignore[assignment]
    fault_classes: tuple[str, ...] = DEFAULT_FAULT_CLASSES
    duration_s: float = 2.0
    warmup_s: float = 0.5
    device_scale: float = 8.0
    lc_target_us: float = 400.0
    be_queue_depth: int = 64
    n_be_apps: int = 4
    cores: int = 10
    seed: int = 42

    def __post_init__(self) -> None:
        if self.ssd is None:
            self.ssd = samsung_980pro_like()
        if not self.fault_classes:
            raise ValueError("need at least one fault class")


def quick_settings() -> RobustnessSettings:
    """The ``d5 --quick`` effort level (shared by CLI and goldens)."""
    return RobustnessSettings(
        duration_s=0.8,
        warmup_s=0.2,
        device_scale=8.0,
        be_queue_depth=64,
    )


def mini_settings() -> RobustnessSettings:
    """Tier-1 / CI-smoke effort: seconds of wall time, still 3 classes."""
    return RobustnessSettings(
        duration_s=0.3,
        warmup_s=0.1,
        device_scale=16.0,
        be_queue_depth=32,
        n_be_apps=2,
    )


def robustness_knobs(settings: RobustnessSettings) -> dict[str, KnobConfig]:
    """Protecting configuration per knob, in scaled-device units.

    Reuses the D4 burst configurations: knob values (io.max caps,
    io.latency/io.cost latency targets) are absolute sysfs numbers
    interpreted against the scaled device, so they are derived from the
    scaled model and a scaled LC target.
    """
    scaled = settings.ssd.scaled(settings.device_scale)
    return burst_knobs(
        scaled, "lc", lc_target_us=settings.lc_target_us * settings.device_scale
    )


@dataclass
class RobustnessOutcome:
    """One (knob, fault-class) cell of the D5 matrix."""

    knob: str
    fault_class: str
    prio_p99_us: float
    prio_mib_s: float
    be_mib_s: float
    retries: float = 0.0
    timeouts: float = 0.0
    failures_delivered: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "knob": self.knob,
            "fault_class": self.fault_class,
            "prio_p99_us": self.prio_p99_us,
            "prio_mib_s": self.prio_mib_s,
            "be_mib_s": self.be_mib_s,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures_delivered": self.failures_delivered,
        }


@dataclass
class KnobRobustness:
    """One knob's healthy baseline plus its per-fault outcomes."""

    knob: str
    healthy: RobustnessOutcome
    degraded: dict[str, RobustnessOutcome] = field(default_factory=dict)

    def p99_ratio(self, fault_class: str) -> float:
        """Degradation ratio: faulted p99 over healthy p99 (lower=better)."""
        return self.degraded[fault_class].prio_p99_us / self.healthy.prio_p99_us

    @property
    def mean_p99_ratio(self) -> float:
        ratios = [self.p99_ratio(name) for name in sorted(self.degraded)]
        return sum(ratios) / len(ratios)

    @property
    def worst_p99_ratio(self) -> float:
        return max(self.p99_ratio(name) for name in sorted(self.degraded))


@dataclass
class RobustnessTable:
    """The D5 result: knobs ranked by mean degradation ratio."""

    fault_classes: list[str]
    rows: list[KnobRobustness] = field(default_factory=list)

    def rank(self) -> list[KnobRobustness]:
        """Rows best-first (smallest mean degradation ratio)."""
        return sorted(self.rows, key=lambda row: (row.mean_p99_ratio, row.knob))

    def row(self, knob: str) -> KnobRobustness:
        for candidate in self.rows:
            if candidate.knob == knob:
                return candidate
        raise KeyError(f"no row for knob {knob!r}")

    def render(self) -> str:
        """Text ranking table (the ``isol-bench d5`` output)."""
        header = (
            f"{'rank':<5}{'knob':<14}{'healthy p99':>12}"
            + "".join(f"{name:>18}" for name in self.fault_classes)
            + f"{'mean ratio':>12}"
        )
        lines = [header, "-" * len(header)]
        for position, row in enumerate(self.rank(), start=1):
            cells = "".join(
                f"{row.p99_ratio(name):>17.2f}x" for name in self.fault_classes
            )
            lines.append(
                f"{position:<5}{row.knob:<14}"
                f"{row.healthy.prio_p99_us:>10.0f}us"
                f"{cells}{row.mean_p99_ratio:>11.2f}x"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """Golden-friendly document (insertion order is rank order)."""
        return {
            "fault_classes": list(self.fault_classes),
            "ranking": [row.knob for row in self.rank()],
            "rows": {
                row.knob: {
                    "healthy": row.healthy.to_json_dict(),
                    "degraded": {
                        name: row.degraded[name].to_json_dict()
                        for name in sorted(row.degraded)
                    },
                    "mean_p99_ratio": row.mean_p99_ratio,
                }
                for row in self.rank()
            },
        }


def _outcome(
    summary: ScenarioSummary, knob_name: str, fault_class: str
) -> RobustnessOutcome:
    """Distill one run into its D5 cell."""
    prio = summary.app_stats("prio")
    be_mib_s = sum(
        stats.bandwidth_mib_s
        for stats in summary.cgroup_stats().values()
        if stats.cgroup_path == BE_GROUP
    )
    counters = summary.fault_counters
    if prio.latency is None:
        raise RuntimeError(
            f"d5 run {knob_name}/{fault_class}: the LC app completed no "
            f"requests in the measurement window; the fault plan starved "
            f"it entirely — lengthen duration_s or soften the plan"
        )
    return RobustnessOutcome(
        knob=knob_name,
        fault_class=fault_class,
        prio_p99_us=prio.latency.p99_us,
        prio_mib_s=prio.bandwidth_mib_s,
        be_mib_s=be_mib_s,
        retries=counters.get("retries", 0.0),
        timeouts=counters.get("timeouts", 0.0),
        failures_delivered=counters.get("failures_delivered", 0.0),
    )


def evaluate_robustness(
    settings: RobustnessSettings | None = None,
    executor: SweepExecutor | None = None,
) -> RobustnessTable:
    """Run the (knob x {healthy + fault classes}) matrix and rank knobs."""
    settings = settings or RobustnessSettings()
    executor = resolve_executor(executor)
    knobs = robustness_knobs(settings)
    specs = robustness_specs(
        be_queue_depth=settings.be_queue_depth, n_be_apps=settings.n_be_apps
    )
    columns = [HEALTHY, *settings.fault_classes]

    scenarios = []
    labels = []
    for knob_name in CONTROL_KNOBS:
        for fault_class in columns:
            faults = None if fault_class == HEALTHY else get_fault_plan(fault_class)
            scenarios.append(
                Scenario(
                    name=f"d5-{knob_name}-{fault_class}",
                    knob=knobs[knob_name],
                    apps=specs,
                    ssd_model=settings.ssd,
                    cores=settings.cores,
                    duration_s=settings.duration_s,
                    warmup_s=settings.warmup_s,
                    seed=settings.seed,
                    device_scale=settings.device_scale,
                    faults=faults,
                )
            )
            labels.append((knob_name, fault_class))

    summaries = resolve_executor(executor).run_strict(scenarios)

    table = RobustnessTable(fault_classes=list(settings.fault_classes))
    by_label = dict(zip(labels, summaries))
    for knob_name in CONTROL_KNOBS:
        healthy = _outcome(by_label[(knob_name, HEALTHY)], knob_name, HEALTHY)
        row = KnobRobustness(knob=knob_name, healthy=healthy)
        for fault_class in settings.fault_classes:
            row.degraded[fault_class] = _outcome(
                by_label[(knob_name, fault_class)], knob_name, fault_class
            )
        table.rows.append(row)
    return table
