"""Unit tests for QueuedServer and TokenBucket."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import QueuedServer, TokenBucket


class TestQueuedServer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueuedServer(Simulator(), 0)

    def test_single_server_serializes(self):
        sim = Simulator()
        server = QueuedServer(sim, 1)
        done = []
        server.submit(10.0, lambda: done.append(sim.now))
        server.submit(10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0, 20.0]

    def test_parallel_servers_run_concurrently(self):
        sim = Simulator()
        server = QueuedServer(sim, 2)
        done = []
        server.submit(10.0, lambda: done.append(sim.now))
        server.submit(10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0, 10.0]

    def test_fifo_queueing_order(self):
        sim = Simulator()
        server = QueuedServer(sim, 1)
        done = []
        for tag in ("a", "b", "c"):
            server.submit(5.0, lambda t=tag: done.append(t))
        sim.run()
        assert done == ["a", "b", "c"]

    def test_busy_and_queue_depth(self):
        sim = Simulator()
        server = QueuedServer(sim, 1)
        server.submit(10.0, lambda: None)
        server.submit(10.0, lambda: None)
        assert server.busy == 1
        assert server.queue_depth == 1
        sim.run()
        assert server.busy == 0
        assert server.queue_depth == 0

    def test_busy_integral_accumulates_service_time(self):
        sim = Simulator()
        server = QueuedServer(sim, 2)
        server.submit(10.0, lambda: None)
        server.submit(10.0, lambda: None)
        sim.run()
        assert server.busy_integral() == pytest.approx(20.0)

    def test_utilization_over_window(self):
        sim = Simulator()
        server = QueuedServer(sim, 1)
        start_integral = server.busy_integral()
        server.submit(25.0, lambda: None)
        sim.run_until(100.0)
        util = server.utilization(start_integral, 0.0, 100.0)
        assert util == pytest.approx(0.25)

    def test_utilization_empty_window_is_zero(self):
        sim = Simulator()
        server = QueuedServer(sim, 1)
        assert server.utilization(0.0, 50.0, 50.0) == 0.0

    def test_queued_work_starts_when_server_frees(self):
        sim = Simulator()
        server = QueuedServer(sim, 1)
        done = []
        server.submit(7.0, lambda: done.append(("first", sim.now)))
        sim.run_until(3.0)
        server.submit(7.0, lambda: done.append(("second", sim.now)))
        sim.run()
        assert done == [("first", 7.0), ("second", 14.0)]


class TestTokenBucket:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, burst=1.0)

    def test_initial_burst_admits_immediately(self):
        bucket = TokenBucket(1.0, burst=100.0)
        assert bucket.reserve(50.0, now=0.0) == 0.0

    def test_over_budget_returns_wait(self):
        bucket = TokenBucket(1.0, burst=10.0)  # 1 token/us
        assert bucket.reserve(10.0, now=0.0) == 0.0
        wait = bucket.reserve(5.0, now=0.0)
        assert wait == pytest.approx(5.0)

    def test_tokens_refill_over_time(self):
        bucket = TokenBucket(2.0, burst=10.0)
        bucket.reserve(10.0, now=0.0)
        # After 5us, 10 tokens accrued.
        assert bucket.reserve(10.0, now=5.0) == 0.0

    def test_burst_is_capped(self):
        bucket = TokenBucket(1.0, burst=10.0)
        assert bucket.tokens(now=1000.0) == pytest.approx(10.0)

    def test_reservations_queue_fifo(self):
        bucket = TokenBucket(1.0, burst=0.0)
        w1 = bucket.reserve(10.0, now=0.0)
        w2 = bucket.reserve(10.0, now=0.0)
        assert w2 == pytest.approx(w1 + 10.0)

    def test_long_run_rate_is_respected(self):
        bucket = TokenBucket(1.0, burst=5.0)
        admitted_by = []
        now = 0.0
        for _ in range(100):
            wait = bucket.reserve(1.0, now)
            admitted_by.append(now + wait)
        # 100 tokens at 1/us starting with 5 burst: last admission ~95us.
        assert max(admitted_by) == pytest.approx(95.0)

    def test_set_rate_validates(self):
        bucket = TokenBucket(1.0, burst=1.0)
        with pytest.raises(ValueError):
            bucket.set_rate(-1.0, now=0.0)

    def test_set_rate_changes_future_refill(self):
        bucket = TokenBucket(1.0, burst=0.0)
        bucket.reserve(10.0, now=0.0)  # debt of 10
        bucket.set_rate(10.0, now=0.0)
        wait = bucket.reserve(0.0, now=0.0)
        # Debt repays at the new rate.
        assert wait == pytest.approx(1.0)

    def test_negative_tokens_reported(self):
        bucket = TokenBucket(1.0, burst=1.0)
        bucket.reserve(5.0, now=0.0)
        assert bucket.tokens(now=0.0) < 0
