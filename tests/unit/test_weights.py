"""Unit tests for hierarchical weight resolution."""

import pytest

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.iocontrol.weights import hierarchical_shares, normalized_shares


@pytest.fixture
def tree():
    return CgroupHierarchy()


def weight_of_io(group):
    return float(group.io_weight())


class TestHierarchicalShares:
    def test_empty_active_set(self, tree):
        assert hierarchical_shares([], weight_of_io) == {}

    def test_single_leaf_gets_everything(self, tree):
        leaf = tree.create("/a", processes=True)
        shares = hierarchical_shares([leaf], weight_of_io)
        assert shares["/a"] == pytest.approx(1.0)

    def test_flat_siblings_split_by_weight(self, tree):
        a = tree.create("/a", processes=True)
        b = tree.create("/b", processes=True)
        a.write("io.weight", "300")
        b.write("io.weight", "100")
        shares = hierarchical_shares([a, b], weight_of_io)
        assert shares["/a"] == pytest.approx(0.75)
        assert shares["/b"] == pytest.approx(0.25)

    def test_inactive_sibling_excluded(self, tree):
        a = tree.create("/a", processes=True)
        tree.create("/b", processes=True)  # exists but inactive
        shares = hierarchical_shares([a], weight_of_io)
        assert shares["/a"] == pytest.approx(1.0)

    def test_nested_shares_multiply(self, tree):
        # /left (w=100) holds two leaves; /right (w=100) holds one.
        left_a = tree.create("/left/a", processes=True)
        left_b = tree.create("/left/b", processes=True)
        right_c = tree.create("/right/c", processes=True)
        shares = hierarchical_shares([left_a, left_b, right_c], weight_of_io)
        assert shares["/left/a"] == pytest.approx(0.25)
        assert shares["/left/b"] == pytest.approx(0.25)
        assert shares["/right/c"] == pytest.approx(0.5)

    def test_paper_1001_example(self, tree):
        # §IV-B: A weight 1000, B weight 1 -> B's share is 1/1001.
        a = tree.create("/a", processes=True)
        b = tree.create("/b", processes=True)
        a.write("io.bfq.weight", "1000")
        b.write("io.bfq.weight", "1")
        shares = hierarchical_shares(
            [a, b], lambda group: float(group.bfq_weight())
        )
        assert shares["/b"] == pytest.approx(1.0 / 1001.0)

    def test_shares_sum_to_one(self, tree):
        leaves = [tree.create(f"/t/g{i}", processes=True) for i in range(5)]
        for i, leaf in enumerate(leaves):
            leaf.write("io.weight", str((i + 1) * 100))
        shares = hierarchical_shares(leaves, weight_of_io)
        assert sum(shares.values()) == pytest.approx(1.0)


class TestNormalizedShares:
    def test_rescales_to_one(self):
        shares = normalized_shares({"a": 0.2, "b": 0.2})
        assert shares["a"] == pytest.approx(0.5)

    def test_all_zero_stays_zero(self):
        shares = normalized_shares({"a": 0.0, "b": 0.0})
        assert shares == {"a": 0.0, "b": 0.0}
