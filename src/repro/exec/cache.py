"""Content-addressed on-disk result cache.

Layout (under ``.isolbench-cache/`` by default, overridable with the
``ISOLBENCH_CACHE_DIR`` environment variable or an explicit path)::

    .isolbench-cache/
      ab/abcdef...1234.pkl.gz     # first two hex chars shard the dir
      cd/cdef01...5678.pkl.gz

Each entry is a gzipped pickle of ``{"schema_version", "key",
"summary"}``. Reads are defensive: a truncated, corrupt, or
wrong-schema file is treated as a *miss* (and removed) -- a poisoned
cache can cost a recomputation but never a crash or a wrong result.
Writes are atomic (temp file + ``os.replace``) so a killed run cannot
leave a half-written entry behind.

Invalidation is purely structural: the key hashes the full scenario
content plus :data:`~repro.exec.cachekey.SCHEMA_VERSION`, so editing a
scenario, a device preset or a knob parameter changes the key, while
unrelated code edits leave it stable. ``repro-cache clear`` (or
:meth:`ResultCache.clear`) wipes everything for simulator-semantics
changes that keys cannot see.
"""

from __future__ import annotations

import gzip
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.cachekey import SCHEMA_VERSION
from repro.exec.summary import ScenarioSummary

_ENV_VAR = "ISOLBENCH_CACHE_DIR"
_DEFAULT_DIRNAME = ".isolbench-cache"


def default_cache_dir() -> Path:
    """``$ISOLBENCH_CACHE_DIR`` or ``./.isolbench-cache``."""
    return Path(os.environ.get(_ENV_VAR, _DEFAULT_DIRNAME))


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def __str__(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s)"
            + (f", {self.corrupt} corrupt entr(ies) dropped" if self.corrupt else "")
        )


@dataclass
class ResultCache:
    """SHA-256-keyed store of :class:`ScenarioSummary` objects."""

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        """Entry location: ``<root>/<key[:2]>/<key>.pkl.gz``."""
        return self.root / key[:2] / f"{key}.pkl.gz"

    def get(self, key: str) -> ScenarioSummary | None:
        """The stored summary, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with gzip.open(path, "rb") as fh:
                entry = pickle.load(fh)
            if (
                not isinstance(entry, dict)
                or entry.get("schema_version") != SCHEMA_VERSION
                or entry.get("key") != key
                or not isinstance(entry.get("summary"), ScenarioSummary)
            ):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Truncated gzip, pickle garbage, schema drift: drop + miss.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return entry["summary"]

    def put(self, key: str, summary: ScenarioSummary, scenario=None) -> None:
        """Store atomically; concurrent writers of the same key are safe.

        ``scenario`` (the :class:`~repro.core.config.Scenario` that
        produced the summary) is stored alongside it when given, so the
        entry doubles as surrogate training data
        (:func:`repro.surrogate.corpus.load_corpus`). ``get`` ignores
        the extra key, and entries written without it stay valid --
        they just cannot be featurized.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"schema_version": SCHEMA_VERSION, "key": key, "summary": summary}
        if scenario is not None:
            entry["scenario"] = scenario
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl.gz"
        )
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.open(raw, "wb", compresslevel=6) as fh:
                    pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """All entry files currently on disk, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.pkl.gz"))

    def size_bytes(self) -> int:
        """Total on-disk size of the cache in bytes."""
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def main(argv: list[str] | None = None) -> int:
    """``repro-cache``: inspect or clear the scenario result cache."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Manage the isol-bench scenario result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: ${_ENV_VAR} or {_DEFAULT_DIRNAME}/)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("stats", help="entry count and total size")
    sub.add_parser("path", help="print the cache directory path")
    sub.add_parser("clear", help="remove every cached result")
    args = parser.parse_args(argv)

    cache = ResultCache(Path(args.cache_dir) if args.cache_dir else default_cache_dir())
    if args.command == "path":
        print(cache.root)
    elif args.command == "stats":
        entries = cache.entries()
        print(
            f"{cache.root}: {len(entries)} entr(ies), "
            f"{cache.size_bytes() / 1024.0:.1f} KiB"
        )
    elif args.command == "clear":
        removed = cache.clear()
        print(f"{cache.root}: removed {removed} entr(ies)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
